"""Configuration dataclasses for the whole system.

Defaults follow the paper: checkpoint interval c = 5 s, utilisation
reports every r = 5 s, scale out after k = 2 consecutive reports above
δ = 70 %, VM pool in front of a provisioning delay on the order of
minutes, EC2-"small"-like worker VMs and larger source/sink VMs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError

#: Fault-tolerance strategy names accepted by :class:`FaultToleranceConfig`.
STRATEGY_RSM = "rsm"
STRATEGY_UPSTREAM_BACKUP = "upstream_backup"
STRATEGY_SOURCE_REPLAY = "source_replay"
STRATEGY_ACTIVE_REPLICATION = "active_replication"
STRATEGY_NONE = "none"
_STRATEGIES = (
    STRATEGY_RSM,
    STRATEGY_UPSTREAM_BACKUP,
    STRATEGY_SOURCE_REPLAY,
    STRATEGY_ACTIVE_REPLICATION,
    STRATEGY_NONE,
)

#: Failure detector kinds accepted by :class:`FaultToleranceConfig`.
DETECTOR_OMNISCIENT = "omniscient"
DETECTOR_PHI = "phi"
_DETECTORS = (DETECTOR_OMNISCIENT, DETECTOR_PHI)

#: State backend kinds accepted by :class:`StateBackendConfig`.
STATE_BACKEND_MEMORY = "memory"
STATE_BACKEND_SPILL = "spill"
STATE_BACKEND_EXTERNAL = "external"
_STATE_BACKENDS = (
    STATE_BACKEND_MEMORY,
    STATE_BACKEND_SPILL,
    STATE_BACKEND_EXTERNAL,
)

#: Checkpoint coordination modes accepted by :class:`CheckpointConfig`.
CHECKPOINT_MODE_PHASE = "phase"
CHECKPOINT_MODE_BARRIER = "barrier"
_CHECKPOINT_MODES = (CHECKPOINT_MODE_PHASE, CHECKPOINT_MODE_BARRIER)


@dataclass
class CheckpointConfig:
    """Periodic checkpointing (§3.2)."""

    #: Checkpointing interval c in seconds.
    interval: float = 5.0
    #: CPU-seconds to serialise one state entry while holding the state
    #: lock (this is the overhead measured in Fig. 14).
    serialize_seconds_per_entry: float = 4e-6
    #: Fixed CPU-seconds per checkpoint regardless of state size.
    serialize_base_seconds: float = 0.002
    #: Serialised bytes per state entry / per buffered tuple (transfer cost).
    bytes_per_entry: float = 64.0
    bytes_per_tuple: float = 64.0
    #: Stagger the first checkpoint of each partition to avoid lockstep.
    stagger: bool = True
    #: Incremental checkpointing (§3.2, [17]): ship only entries touched
    #: since the previous checkpoint; the backup store materialises the
    #: delta.  Cuts serialisation and transfer cost for large, sparsely
    #: updated state.
    incremental: bool = False
    #: Checkpoint coordination: "phase" is the per-instance periodic
    #: daemon (pause-free CoW copy, synchronous with the engine's
    #: checkpoint phases — today's behaviour and the bit-identical
    #: default).  "barrier" switches to epoch-aligned asynchronous
    #: barrier snapshots (Carbone et al.): sources inject numbered
    #: barriers every ``interval`` seconds, multi-input operators align
    #: them by parking the faster input, each operator cuts per epoch and
    #: ships only the delta since its previous cut through the StateMover.
    mode: str = CHECKPOINT_MODE_PHASE

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.interval <= 0:
            raise ConfigurationError(f"checkpoint interval must be > 0: {self.interval}")
        if self.serialize_seconds_per_entry < 0 or self.serialize_base_seconds < 0:
            raise ConfigurationError("checkpoint serialisation costs must be >= 0")
        if self.mode not in _CHECKPOINT_MODES:
            raise ConfigurationError(
                f"unknown checkpoint mode {self.mode!r}; "
                f"expected one of {_CHECKPOINT_MODES}"
            )


@dataclass
class ScalingConfig:
    """Bottleneck detection and scale-out policy (§5.1)."""

    enabled: bool = True
    #: Utilisation report period r in seconds.
    report_interval: float = 5.0
    #: Scale-out threshold δ as a CPU utilisation fraction.
    threshold: float = 0.70
    #: Number of consecutive above-threshold reports k before scaling out.
    consecutive_reports: int = 2
    #: Ignore an operator for this long after triggering a scale out.
    cooldown: float = 10.0
    #: Hard cap on worker VMs (None = unlimited).
    max_vms: int | None = None
    #: Cap on concurrently in-flight scale-out operations; each one
    #: briefly pauses upstreams and replays tuples, so mass-splitting
    #: destabilises throughput.  Recoveries are exempt.
    max_concurrent_operations: int | None = 4
    #: Partitions added per scale out of one slot (slot splits in two).
    split_factor: int = 2
    #: Scaling policy: "threshold" is the paper's reactive k-consecutive
    #: rule; "predictive" additionally fits a rate-of-change line over
    #: the recent utilisation window and provisions when the *projected*
    #: utilisation crosses δ — ahead of the ramp instead of after k
    #: breaches.
    policy: str = "threshold"
    #: Utilisation samples kept per slot for the predictive fit.
    predict_window: int = 6
    #: Seconds ahead the predictive policy projects utilisation.
    predict_horizon: float = 10.0
    #: Minimum samples before a predictive (slope-based) decision fires.
    predict_min_samples: int = 3
    #: Hot-key detection: sample per-key rates at worker operators and
    #: carve a dominating key out of its interval into a dedicated
    #: singleton slot (fine-grained elasticity for Zipf-skewed loads).
    hot_key_enabled: bool = False
    #: Heavy-hitter sketch capacity (Space-Saving counters per slot).
    hot_key_sketch_size: int = 32
    #: A slot is carve-eligible when its top key carries at least this
    #: share of the slot's processed weight over a report window.
    hot_key_share: float = 0.5
    #: Consecutive hot+skewed reports before a carve-out triggers.
    hot_key_min_reports: int = 2
    #: A carved singleton re-absorbs (scale-in merge with its interval
    #: neighbour) once its utilisation stays below this for
    #: ``hot_key_cool_reports`` consecutive rounds.
    hot_key_cool_util: float = 0.25
    hot_key_cool_reports: int = 3

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.report_interval <= 0:
            raise ConfigurationError("report_interval must be > 0")
        if not 0 < self.threshold <= 1:
            raise ConfigurationError(f"threshold must be in (0, 1]: {self.threshold}")
        if self.consecutive_reports < 1:
            raise ConfigurationError("consecutive_reports must be >= 1")
        if self.split_factor < 2:
            raise ConfigurationError("split_factor must be >= 2")
        if self.policy not in ("threshold", "predictive"):
            raise ConfigurationError(f"unknown scaling policy: {self.policy!r}")
        if self.predict_window < 2:
            raise ConfigurationError("predict_window must be >= 2")
        if self.predict_horizon <= 0:
            raise ConfigurationError("predict_horizon must be > 0")
        if self.predict_min_samples < 2:
            raise ConfigurationError("predict_min_samples must be >= 2")
        if self.hot_key_sketch_size < 1:
            raise ConfigurationError("hot_key_sketch_size must be >= 1")
        if not 0 < self.hot_key_share <= 1:
            raise ConfigurationError(
                f"hot_key_share must be in (0, 1]: {self.hot_key_share}"
            )
        if self.hot_key_min_reports < 1:
            raise ConfigurationError("hot_key_min_reports must be >= 1")
        if self.hot_key_cool_reports < 1:
            raise ConfigurationError("hot_key_cool_reports must be >= 1")


@dataclass
class FaultToleranceConfig:
    """Failure detection and recovery (§4.2, §6.2)."""

    #: "rsm" (recovery using state management), "upstream_backup",
    #: "source_replay", "active_replication" or "none".
    strategy: str = STRATEGY_RSM
    #: Delay between a crash and its detection (heartbeat timeout).
    detection_delay: float = 1.0
    #: Parallelisation level used when recovering a failed operator;
    #: 1 = serial recovery, >1 = parallel recovery (§4.2).
    recovery_parallelism: int = 1
    #: For upstream_backup / source_replay: how long tuples are retained
    #: in buffers, typically the operator window size.
    buffer_horizon: float = 30.0
    #: Seconds between consecutive replayed tuple messages from one
    #: operator — the streaming capacity of the replay channel
    #: (serialisation + network).  Pacing replays over time lets fresh
    #: input contend with the replay at the recovering operator (UB),
    #: while a stopped source avoids that contention (SR).
    replay_message_gap: float = 5.0e-5
    #: Failure detector: "omniscient" models detection latency directly
    #: (crash -> notification after ``detection_delay``), exactly the
    #: paper's fail-stop assumption.  "phi" replaces it with a
    #: message-based phi-accrual detector: every instance sends real
    #: heartbeats through the simulated network (subject to delay, loss
    #: and partitions), so detection can be late or *wrong* — which is
    #: what epoch fencing exists to survive.
    detector: str = DETECTOR_OMNISCIENT
    #: Heartbeat send period per instance (phi detector only).
    heartbeat_interval: float = 0.5
    #: Wire size of one heartbeat message.
    heartbeat_bytes: float = 32.0
    #: Sliding window of inter-arrival samples per slot.
    phi_window: int = 100
    #: Phi level at which a slot becomes SUSPECT (gauge + event only).
    phi_suspect: float = 1.0
    #: Phi level at which a suspicion is CONFIRMED (stronger telemetry;
    #: still no action — the lifecycle is suspect -> confirm -> dead).
    phi_confirm: float = 4.0
    #: Phi level at which the slot is declared DEAD and recovery runs.
    phi_dead: float = 8.0
    #: How often the detector re-evaluates phi for every tracked slot.
    phi_check_interval: float = 0.25
    #: Floor on the arrival-interval standard deviation, so a perfectly
    #: regular simulated heartbeat stream cannot drive phi to infinity
    #: on sub-millisecond jitter.
    phi_min_stddev: float = 0.05
    #: Base delay before re-attempting a recovery that could not start
    #: (attempt n waits base * multiplier^(n-1), capped and jittered).
    retry_base: float = 1.0
    #: Exponential growth factor between consecutive retry delays.
    retry_multiplier: float = 2.0
    #: Upper bound on a single retry delay.
    retry_cap: float = 10.0
    #: Jitter fraction: each delay is scaled by a seeded uniform draw
    #: from [1 - jitter, 1 + jitter].  0 keeps retries deterministic.
    retry_jitter: float = 0.0
    #: Give up after this many retries (None = retry forever).
    max_retries: int | None = None
    #: Give up once this many seconds have passed since the failure
    #: (None = no deadline).
    retry_deadline: float | None = None

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.strategy not in _STRATEGIES:
            raise ConfigurationError(
                f"unknown fault tolerance strategy {self.strategy!r}; "
                f"expected one of {_STRATEGIES}"
            )
        if self.detection_delay < 0:
            raise ConfigurationError("detection_delay must be >= 0")
        if self.recovery_parallelism < 1:
            raise ConfigurationError("recovery_parallelism must be >= 1")
        if self.detector not in _DETECTORS:
            raise ConfigurationError(
                f"unknown failure detector {self.detector!r}; "
                f"expected one of {_DETECTORS}"
            )
        if self.heartbeat_interval <= 0:
            raise ConfigurationError("heartbeat_interval must be > 0")
        if self.heartbeat_bytes < 0:
            raise ConfigurationError("heartbeat_bytes must be >= 0")
        if self.phi_window < 2:
            raise ConfigurationError("phi_window must be >= 2")
        if not 0 < self.phi_suspect <= self.phi_confirm <= self.phi_dead:
            raise ConfigurationError(
                "phi thresholds must satisfy "
                "0 < phi_suspect <= phi_confirm <= phi_dead: "
                f"{self.phi_suspect}, {self.phi_confirm}, {self.phi_dead}"
            )
        if self.phi_check_interval <= 0:
            raise ConfigurationError("phi_check_interval must be > 0")
        if self.phi_min_stddev <= 0:
            raise ConfigurationError("phi_min_stddev must be > 0")
        if self.retry_base <= 0:
            raise ConfigurationError("retry_base must be > 0")
        if self.retry_multiplier < 1:
            raise ConfigurationError("retry_multiplier must be >= 1")
        if self.retry_cap < self.retry_base:
            raise ConfigurationError("retry_cap must be >= retry_base")
        if not 0 <= self.retry_jitter < 1:
            raise ConfigurationError(f"retry_jitter must be in [0, 1): {self.retry_jitter}")
        if self.max_retries is not None and self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0 or None")
        if self.retry_deadline is not None and self.retry_deadline <= 0:
            raise ConfigurationError("retry_deadline must be > 0 or None")


@dataclass
class NetworkConfig:
    """Point-to-point network model."""

    latency: float = 0.001
    bandwidth_bytes_per_s: float = 100e6
    #: Wire size of one (unit-weight) tuple message.
    tuple_bytes: float = 64.0

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.latency < 0 or self.bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("invalid network parameters")


@dataclass
class BatchingConfig:
    """Data-plane output batching (the SEEP engines batch on the wire).

    When enabled, an operator instance coalesces output tuples per
    destination slot into size/time-bounded batches, so the network and
    the event queue see one event per batch instead of one per tuple.
    Batches are force-flushed at checkpoint barriers, on pause/stop and
    before routing updates, so reconfiguration semantics (trim, replay,
    dedup floors) are identical to the unbatched data plane.  Replayed
    tuples always bypass batching: replay pacing and drain accounting
    are per-message.
    """

    enabled: bool = False
    #: Flush a destination's batch once it holds this many tuples.
    max_tuples: int = 32
    #: Flush every pending batch at most this long (seconds of simulated
    #: time) after its first tuple — bounds added latency.
    linger: float = 0.002
    #: Ship batches as struct-of-arrays :class:`TupleBlock` records and
    #: process them through vectorized operator kernels (grouped
    #: bulk-apply for keyed aggregation, fused per-block passes for
    #: stateless chains).  Operators without a block kernel fall back to
    #: row-at-a-time processing of the same block.  Semantics are
    #: identical to the list-of-Tuple batched plane: same messages, same
    #: admission filters, same state transitions.
    columnar: bool = False

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.max_tuples < 1:
            raise ConfigurationError(f"max_tuples must be >= 1: {self.max_tuples}")
        if self.linger < 0:
            raise ConfigurationError(f"linger must be >= 0: {self.linger}")


@dataclass
class FlowControlConfig:
    """Credit-based backpressure on the batched data plane.

    Receivers grant credits (in tuple-weight units) per upstream edge;
    a sender whose credit account for a destination has run dry holds
    its pending batch instead of shipping it, and a source whose output
    is blocked sheds new input (open-loop).  Grants are deferred while
    the receiver's queue depth sits at or above ``queue_ceiling``, so a
    slow sink throttles the whole upstream chain instead of growing
    unbounded queues.  Control-plane flushes (checkpoint barriers,
    pause/stop, routing updates) always pierce backpressure — they debit
    the account below zero rather than stall reconfiguration.
    """

    enabled: bool = False
    #: Initial sender credit per downstream edge, in tuple-weight units.
    initial_credits: float = 512.0
    #: Defer credit grants while the receiver's queued weight (input
    #: backlog plus blocked pending output) is at or above this.
    queue_ceiling: float = 256.0
    #: Accumulate at least this much processed weight before granting,
    #: so credits travel in a few messages rather than one per tuple.
    grant_quantum: float = 64.0
    #: Wire size of one credit-grant message.
    credit_bytes: float = 16.0
    #: Shed new source input while the source's output is blocked
    #: (open-loop sources drop on backpressure, counted per operator as
    #: ``backpressure_shed:{op}``).  Disable to make backpressure purely
    #: deferring — nothing is lost, sources simply hold tuples in their
    #: pending batches until credits return (closed-loop semantics, used
    #: by the chaos sweeps where the golden run must see every tuple).
    shed_at_source: bool = True

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.initial_credits <= 0:
            raise ConfigurationError(
                f"initial_credits must be > 0: {self.initial_credits}"
            )
        if self.queue_ceiling <= 0:
            raise ConfigurationError(
                f"queue_ceiling must be > 0: {self.queue_ceiling}"
            )
        if self.grant_quantum <= 0:
            raise ConfigurationError(
                f"grant_quantum must be > 0: {self.grant_quantum}"
            )
        if self.credit_bytes < 0:
            raise ConfigurationError(f"credit_bytes must be >= 0: {self.credit_bytes}")


@dataclass
class MigrationConfig:
    """Fluid state migration (chunked key-range transfer).

    Every state-movement path (scale-out split, scale-in merge, serial
    and parallel recovery) runs through the StateMover layer
    (:mod:`repro.core.migration`).  By default the migrating key range
    moves *all at once* — one chunk, behaviourally identical to the
    paper's Algorithm 2/3.  Raising ``max_chunks`` (optionally with a
    ``chunk_entries`` target) cuts the range into sub-intervals that are
    checkpointed, shipped, restored and *committed one at a time*: the
    operator keeps serving not-yet-migrated keys while each chunk moves,
    so the per-tuple pause drops from O(total state) to O(chunk).
    """

    #: Target processing-state entries per chunk; ``None`` sizes chunks
    #: by dividing the range into ``max_chunks`` equal parts.
    chunk_entries: int | None = None
    #: Hard cap on chunks per migrating partition.  1 = all at once
    #: (the default, and the degenerate fluid case).
    max_chunks: int = 1
    #: Abort the operation if one chunk has not committed after this
    #: many seconds (``None`` = no per-chunk deadline).
    chunk_timeout: float | None = None

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.max_chunks < 1:
            raise ConfigurationError(f"max_chunks must be >= 1: {self.max_chunks}")
        if self.chunk_entries is not None and self.chunk_entries < 1:
            raise ConfigurationError(
                f"chunk_entries must be >= 1 or None: {self.chunk_entries}"
            )
        if self.chunk_timeout is not None and self.chunk_timeout <= 0:
            raise ConfigurationError(
                f"chunk_timeout must be > 0 or None: {self.chunk_timeout}"
            )


@dataclass
class StateBackendConfig:
    """Tiered operator-state backend selection (§3.3 spill / persist).

    Every stateful operator instance keeps its processing state behind a
    :mod:`repro.core.backend` StateBackend.  ``memory`` is today's
    copy-on-write in-memory dict and the bit-compatible default.
    ``spill`` bounds the hot (memory) tier to ``max_hot_entries`` and
    moves cold entries to a simulated disk tier, charging every
    spill/fault as VM I/O time.  ``external`` additionally writes every
    update through to a run-wide :class:`ExternalStateStore` that
    survives all VM deaths, enabling recovery of last resort when the
    source *and* every backup are gone.
    """

    #: "memory", "spill" or "external".
    kind: str = STATE_BACKEND_MEMORY
    #: Hot-tier bound for the spill/external backends.
    max_hot_entries: int = 100_000
    #: Simulated disk seconds per entry spilled or faulted back in.
    io_seconds_per_entry: float = 5e-6
    #: External-store seconds per entry written through (persist).
    write_seconds_per_entry: float = 2e-5
    #: External-store seconds per entry read back (restore of last resort).
    read_seconds_per_entry: float = 2e-5
    #: Restrict the backend to these operator names (None = all stateful
    #: operators; sources and sinks always stay in memory).
    operators: tuple[str, ...] | None = None

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.kind not in _STATE_BACKENDS:
            raise ConfigurationError(
                f"unknown state backend {self.kind!r}; "
                f"expected one of {_STATE_BACKENDS}"
            )
        if self.max_hot_entries < 1:
            raise ConfigurationError(
                f"max_hot_entries must be >= 1: {self.max_hot_entries}"
            )
        if self.io_seconds_per_entry < 0:
            raise ConfigurationError("io_seconds_per_entry must be >= 0")
        if self.write_seconds_per_entry < 0 or self.read_seconds_per_entry < 0:
            raise ConfigurationError("external store costs must be >= 0")


@dataclass
class CloudConfig:
    """IaaS provider and VM pool (§5.2)."""

    #: Time to provision a fresh VM (paper: "on the order of minutes").
    provisioning_delay: float = 90.0
    #: Pre-allocated VM pool size p.
    pool_size: int = 3
    #: Time to hand a pooled VM to the SPS and deploy an operator on it.
    pool_handout_delay: float = 1.0
    #: CPU capacity of worker VMs (1.0 = one EC2 "small").
    worker_capacity: float = 1.0
    #: CPU capacity of source/sink VMs (high-memory double extra large).
    source_sink_capacity: float = 13.0

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        if self.provisioning_delay < 0 or self.pool_handout_delay < 0:
            raise ConfigurationError("cloud delays must be >= 0")
        if self.pool_size < 0:
            raise ConfigurationError("pool_size must be >= 0")
        if self.worker_capacity <= 0 or self.source_sink_capacity <= 0:
            raise ConfigurationError("VM capacities must be > 0")


@dataclass
class SystemConfig:
    """Top-level configuration of one SPS deployment."""

    checkpoint: CheckpointConfig = field(default_factory=CheckpointConfig)
    scaling: ScalingConfig = field(default_factory=ScalingConfig)
    fault: FaultToleranceConfig = field(default_factory=FaultToleranceConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cloud: CloudConfig = field(default_factory=CloudConfig)
    batching: BatchingConfig = field(default_factory=BatchingConfig)
    flow: FlowControlConfig = field(default_factory=FlowControlConfig)
    migration: MigrationConfig = field(default_factory=MigrationConfig)
    state_backend: StateBackendConfig = field(default_factory=StateBackendConfig)
    #: Master seed for all randomness in the run.
    seed: int = 0
    #: Per-instance input queue bound in tuples (weighted).  ``None``
    #: means unbounded (closed-loop workloads); a bound makes the system
    #: drop tuples under overload (open-loop workloads, §6.1).
    queue_capacity: float | None = None
    #: Width of throughput-rate bins in seconds.
    rate_bin: float = 1.0
    #: Record every Nth latency sample (weight-compensated).  High-rate
    #: runs (LRB at L=350) use decimation to bound metric memory.
    latency_sample_every: int = 1

    def validate(self) -> None:
        """Raise ConfigurationError on invalid or inconsistent values."""
        self.checkpoint.validate()
        self.scaling.validate()
        self.fault.validate()
        self.network.validate()
        self.cloud.validate()
        self.batching.validate()
        self.flow.validate()
        self.migration.validate()
        self.state_backend.validate()
        if self.flow.enabled and not self.batching.enabled:
            raise ConfigurationError(
                "flow control requires batching.enabled (credits meter "
                "batch admission; the unbatched plane has no sender queue)"
            )
        if self.queue_capacity is not None and self.queue_capacity <= 0:
            raise ConfigurationError("queue_capacity must be positive or None")
        if self.latency_sample_every < 1:
            raise ConfigurationError("latency_sample_every must be >= 1")

    @property
    def bytes_per_entry(self) -> float:
        """Serialised bytes per state entry — the single source of truth
        for checkpoint sizing, the transfer-cost model and chunk sizing."""
        return self.checkpoint.bytes_per_entry

    @property
    def bytes_per_tuple(self) -> float:
        """Serialised bytes per buffered tuple (see ``bytes_per_entry``)."""
        return self.checkpoint.bytes_per_tuple

    def with_overrides(self, **kwargs) -> "SystemConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)
