"""Sources: operators that feed external data into a query.

A :class:`SourceOperator` marks a query-graph source (§2.2: ``src``
operators cannot fail).  Actual data comes from a
:class:`WorkloadGenerator`, which the deployment manager attaches to the
source's instances; generators drive
:meth:`repro.runtime.instance.OperatorInstance.inject`, so source-side
serialisation cost and saturation are modelled like any other CPU work.

Under ``checkpoint_mode = "barrier"`` sources are additionally the
injection points of the epoch barrier protocol (DESIGN.md §14): the
system-level :class:`~repro.core.checkpoint.Checkpointer` calls
:meth:`~repro.runtime.instance.OperatorInstance.inject_barrier` on every
live source instance each checkpoint interval, which flushes pending
batches and stamps the numbered barrier into the output stream ahead of
all later emissions.  Sources hold no checkpointable state (§2.2: they
cannot fail), so they forward barriers without ever cutting or aligning.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

from repro.core.operator import Operator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.instance import OperatorInstance
    from repro.runtime.system import StreamProcessingSystem


class SourceOperator(Operator):
    """A query source; emits whatever its workload generator injects."""

    def __init__(self, name: str, cost_per_tuple: float = 1.6e-6, **kwargs):
        kwargs.setdefault("stateful", False)
        super().__init__(name, cost_per_tuple=cost_per_tuple, **kwargs)

    def on_tuple(self, tup, ctx) -> None:  # pragma: no cover - defensive
        raise RuntimeError(f"source {self.name} cannot receive tuples")


class WorkloadGenerator(Protocol):
    """Anything that can drive a source operator's instances."""

    def attach(
        self,
        system: "StreamProcessingSystem",
        instances: list["OperatorInstance"],
    ) -> None:
        """Schedule emissions into the given source instances."""
        ...  # pragma: no cover - protocol


class SourceController:
    """Pause/resume handle over a source's instances.

    The source-replay recovery strategy "stops the generation of new
    tuples during the recovery phase" (§6.2); generators must check
    :attr:`emitting` before injecting.
    """

    def __init__(self) -> None:
        self.emitting = True
        self.paused_weight = 0.0

    def pause(self) -> None:
        """Stop generation of new tuples (source-replay recovery)."""
        self.emitting = False

    def resume(self) -> None:
        """Resume generation."""
        self.emitting = True
