"""The logically centralised query manager (§2.2, §5).

Owns the execution graph (which slots realise which logical operator)
and the authoritative copy of all routing state.  Routing state is not
part of operator checkpoints — it only changes on scale out/in and
recovery — so the query manager is where coordinators store it and where
recovering operators retrieve it (Algorithm 2, store-routing-state).
"""

from __future__ import annotations

from repro.core.execution import ExecutionGraph, Slot
from repro.core.query import QueryGraph
from repro.core.state import RoutingState
from repro.errors import QueryError


class QueryManager:
    """Maps logical queries to physical execution graphs."""

    def __init__(self) -> None:
        self.query: QueryGraph | None = None
        self.execution: ExecutionGraph | None = None

    # ------------------------------------------------------------ lifecycle

    def register_query(
        self, query: QueryGraph, parallelism: dict[str, int] | None = None
    ) -> ExecutionGraph:
        """Validate ``query`` and build its initial execution graph."""
        query.validate()
        if self.query is not None:
            raise QueryError("query manager already has a deployed query")
        self.query = query
        self.execution = ExecutionGraph(query)
        self.execution.initialise(parallelism)
        return self.execution

    def _graph(self) -> ExecutionGraph:
        if self.execution is None:
            raise QueryError("no query deployed")
        return self.execution

    # --------------------------------------------------------------- slots

    def slots_of(self, op_name: str) -> list[Slot]:
        """Live slots realising ``op_name``."""
        return self._graph().slots_of(op_name)

    def slot_by_uid(self, uid: int) -> Slot:
        """Look up a live slot by uid."""
        return self._graph().slot_by_uid(uid)

    def new_slot(self, op_name: str, index: int) -> Slot:
        """Mint a new slot identity for ``op_name``."""
        return self._graph().new_slot(op_name, index)

    def replace_slots(
        self, op_name: str, removed: list[Slot], added: list[Slot]
    ) -> None:
        """Swap partition slots after scale out/in or recovery."""
        self._graph().replace_slots(op_name, removed, added)

    def parallelism_of(self, op_name: str) -> int:
        """Current number of partitions of ``op_name``."""
        return self._graph().parallelism_of(op_name)

    def total_slots(self) -> int:
        """Total live slots across all operators."""
        return self._graph().total_slots()

    # ------------------------------------------------------------- routing

    def routing_to(self, op_name: str) -> RoutingState:
        """retrieve-routing-state(o)."""
        return self._graph().routing_to(op_name)

    def store_routing(self, op_name: str, routing: RoutingState) -> None:
        """store-routing-state(u, ρ) — the authoritative copy."""
        self._graph().set_routing(op_name, routing)

    # ------------------------------------------------------------ topology

    def upstream_of(self, op_name: str) -> list[str]:
        """up(o): names of operators feeding ``op_name``."""
        if self.query is None:
            raise QueryError("no query deployed")
        return self.query.upstream_of(op_name)

    def downstream_of(self, op_name: str) -> list[str]:
        """down(o): names of operators fed by ``op_name``."""
        if self.query is None:
            raise QueryError("no query deployed")
        return self.query.downstream_of(op_name)

    def is_source(self, op_name: str) -> bool:
        """Whether ``op_name`` is a source."""
        if self.query is None:
            raise QueryError("no query deployed")
        return self.query.is_source(op_name)

    def is_sink(self, op_name: str) -> bool:
        """Whether ``op_name`` is a sink."""
        if self.query is None:
            raise QueryError("no query deployed")
        return self.query.is_sink(op_name)
