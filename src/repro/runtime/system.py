"""The stream processing system facade (Fig. 4 of the paper).

:class:`StreamProcessingSystem` assembles every component: the simulated
cloud (provider, pool, network, failure injection), the query and
deployment managers, the per-VM backup stores, the bottleneck detector +
scale-out coordinator and the failure detector + recovery coordinator.
It is the single object experiments interact with::

    sps = StreamProcessingSystem(SystemConfig())
    sps.deploy(query, generators={"src": generator})
    sps.run(until=120.0)
"""

from __future__ import annotations

from typing import Any

from repro.config import (
    CHECKPOINT_MODE_BARRIER,
    DETECTOR_PHI,
    STRATEGY_ACTIVE_REPLICATION,
    STRATEGY_NONE,
    STRATEGY_RSM,
    SystemConfig,
)
from repro.core.checkpoint import (
    BackupStore,
    Checkpoint,
    Checkpointer,
    EpochCut,
    as_checkpoint,
)
from repro.core.query import QueryGraph
from repro.core.spill import ExternalStateStore
from repro.errors import DeploymentError, RuntimeStateError
from repro.obs.log import config_fingerprint
from repro.obs.telemetry import Telemetry
from repro.runtime.deployment import DeploymentManager
from repro.runtime.instance import OperatorInstance
from repro.runtime.query_manager import QueryManager
from repro.runtime.source import SourceController, WorkloadGenerator
from repro.sim.cloud import CloudProvider, VMPool
from repro.sim.failure import FailureInjector
from repro.sim.metrics import MetricsHub
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.simulator import PRIORITY_CONTROL, Simulator
from repro.sim.vm import VirtualMachine


class StreamProcessingSystem:
    """A complete, simulated deployment of the paper's SPS."""

    def __init__(self, config: SystemConfig | None = None) -> None:
        self.config = config or SystemConfig()
        self.config.validate()
        self.sim = Simulator()
        self.rng = RngRegistry(self.config.seed)
        self.metrics = MetricsHub()
        #: The observability facade: wraps the metrics hub, mirrors
        #: every event into a structured JSONL log stamped with the run's
        #: seed and config fingerprint, and traces causally linked spans
        #: across the hot seams (engine phases, checkpoints, transfers).
        self.telemetry = Telemetry(
            hub=self.metrics,
            clock=lambda: self.sim.now,
            run_meta={
                "seed": self.config.seed,
                "config_hash": config_fingerprint(self.config),
            },
        )
        self.network = Network(
            self.sim,
            latency=self.config.network.latency,
            bandwidth_bytes_per_s=self.config.network.bandwidth_bytes_per_s,
        )
        self.telemetry.observe_network(self.network)
        self.provider = CloudProvider(
            self.sim,
            provisioning_delay=self.config.cloud.provisioning_delay,
            cpu_capacity=self.config.cloud.worker_capacity,
        )
        self.pool = VMPool(
            self.sim,
            self.provider,
            size=self.config.cloud.pool_size,
            handout_delay=self.config.cloud.pool_handout_delay,
        )
        self.injector = FailureInjector(self.sim)
        #: Run-wide external state store (§3.3 persist): written through
        #: by external-backend operators at every checkpoint cut.  Unlike
        #: the per-VM backup stores it survives every VM failure, so it
        #: is the recovery source of last resort.
        backend_cfg = self.config.state_backend
        self.external_store = ExternalStateStore(
            write_seconds_per_entry=backend_cfg.write_seconds_per_entry,
            write_cost=lambda s: self.metrics.increment("external_write_io", s),
            read_seconds_per_entry=backend_cfg.read_seconds_per_entry,
            read_cost=lambda s: self.metrics.increment("external_read_io", s),
        )
        self.query_manager = QueryManager()
        self.deployment = DeploymentManager(self)
        self.instances: dict[int, OperatorInstance] = {}
        self.source_controllers: dict[str, SourceController] = {}
        #: Backup stores by VM id (a store dies with its VM).
        self.backup_stores: dict[int, BackupStore] = {}
        #: Where each slot's most recent backup lives (backup(o)).
        self.backup_locations: dict[int, VirtualMachine] = {}
        #: Slots whose upstream buffers must not be trimmed right now
        #: (a scale-out/recovery is pinned to one of their checkpoints).
        self.trim_locks: set[int] = set()
        #: Fencing epoch per slot uid (absent = 0).  Bumped by
        #: :meth:`fence_slot` whenever a recovery installs a replacement
        #: for an instance believed dead; every data/control emission is
        #: stamped with its sender's epoch, and receivers reject stamps
        #: below the slot's current epoch — a falsely-declared-dead
        #: zombie can therefore never clobber its successor's output.
        self.slot_epochs: dict[int, int] = {}
        #: Committed-prefix floor per fenced (slot, epoch): the restored
        #: checkpoint's output clock at the moment that epoch's timeline
        #: was condemned (see :meth:`fence_floor`).
        self.fence_floors: dict[tuple[int, int], int] = {}
        # Control-plane components, created at deploy time.
        self.detector = None
        #: Message-based phi failure detector (``fault.detector="phi"``).
        self.phi_detector = None
        #: The phase-driven engine every topology change runs through.
        self.reconfig = None
        self.scale_out = None
        self.scale_in = None
        self.recovery = None
        #: Active-replication manager (set when the strategy is active).
        self.replication = None
        #: The single checkpoint-coordination seam: every cut (phase or
        #: barrier epoch) and every recovery's backup selection routes
        #: through it.
        self.checkpointer = Checkpointer(self)
        self._barrier_task = None
        self._deployed = False

    # ------------------------------------------------------------ lifecycle

    def deploy(
        self,
        query: QueryGraph,
        parallelism: dict[str, int] | None = None,
        generators: dict[str, WorkloadGenerator] | None = None,
    ) -> None:
        """Deploy a query and start all control-plane services."""
        if self._deployed:
            raise DeploymentError("system already has a deployed query")
        self.deployment.deploy_query(query, parallelism, generators)
        self._deployed = True

        from repro.fault.recovery import RecoveryCoordinator
        from repro.scaling.coordinator import ScaleOutCoordinator
        from repro.scaling.detector import BottleneckDetector
        from repro.scaling.reconfig import ReconfigurationEngine
        from repro.scaling.scale_in import ScaleInCoordinator

        self.reconfig = ReconfigurationEngine(self)
        self.telemetry.observe_engine(self.reconfig)
        self.scale_out = ScaleOutCoordinator(self)
        self.scale_in = ScaleInCoordinator(self)
        self.recovery = RecoveryCoordinator(self)
        if self.config.fault.strategy == STRATEGY_ACTIVE_REPLICATION:
            from repro.fault.active import ActiveReplicationManager

            self.replication = ActiveReplicationManager(self)
            self.replication.replicate_all()
        if self.config.scaling.enabled:
            self.detector = BottleneckDetector(self)
            self.detector.start()
        if self.config.fault.detector == DETECTOR_PHI:
            from repro.fault.detector import PhiFailureDetector

            self.phi_detector = PhiFailureDetector(self)
            self.phi_detector.start()
        ckpt_cfg = self.config.checkpoint
        if (
            ckpt_cfg.mode == CHECKPOINT_MODE_BARRIER
            and self.config.fault.strategy == STRATEGY_RSM
        ):
            # Barrier mode replaces the per-instance checkpoint daemons
            # with one epoch driver: every ``interval`` seconds the
            # Checkpointer opens an epoch and the sources stamp it into
            # their streams.
            self._barrier_task = self.sim.every(
                ckpt_cfg.interval,
                self.checkpointer.start_epoch,
                start_after=ckpt_cfg.interval,
            )

    def run(self, until: float) -> None:
        """Advance simulated time to ``until``."""
        self.sim.run(until=until)

    # -------------------------------------------------------------- lookups

    def instance(self, uid: int) -> OperatorInstance | None:
        """The instance registered for a slot uid (any status)."""
        return self.instances.get(uid)

    def live_instance(self, uid: int) -> OperatorInstance | None:
        """The instance for a slot uid if alive on a live VM."""
        instance = self.instances.get(uid)
        if instance is not None and instance.alive and instance.vm.alive:
            return instance
        return None

    def instances_of(self, op_name: str) -> list[OperatorInstance]:
        """Live instances realising ``op_name``, in partition order."""
        result = []
        for slot in self.query_manager.slots_of(op_name):
            instance = self.instances.get(slot.uid)
            if instance is not None:
                result.append(instance)
        return result

    def vm_of(self, op_name: str, partition: int = 0) -> VirtualMachine:
        """The VM hosting one partition (failure-injection helper)."""
        slots = self.query_manager.slots_of(op_name)
        if partition >= len(slots):
            raise RuntimeStateError(
                f"{op_name} has {len(slots)} partitions, no index {partition}"
            )
        instance = self.instances[slots[partition].uid]
        return instance.vm

    # ------------------------------------------------------------- fencing

    def epoch_of(self, slot_uid: int) -> int:
        """The current fencing epoch of a slot (0 until first fenced)."""
        return self.slot_epochs.get(slot_uid, 0)

    def fence_floor(self, slot_uid: int, epoch: int) -> int:
        """The committed-prefix floor recorded when ``epoch`` was fenced.

        Output timestamps at or below the floor were covered by the
        checkpoint the successor restored from: the successor's clock
        starts *above* them and never re-derives them, so a stale-epoch
        delivery inside the floor is the sole copy of a committed tuple
        (accepted late, deduplicated), while anything above the floor is
        the condemned timeline the successor re-emits (rejected).
        """
        return self.fence_floors.get((slot_uid, epoch), 0)

    def fence_slot(self, slot_uid: int, floor: int = 0) -> int:
        """Bump a slot's epoch ahead of installing a replacement.

        Called by the reconfiguration engine at recovery-install sites
        only — graceful retirements (scale out of a live operator,
        merges, fluid hand-offs) must *not* fence, because their
        suppression semantics assume the old instance's in-flight
        emissions still deliver.  The external store's write floor moves
        with the epoch, so a zombie's write-through flushes are rejected
        even if they are already on the (simulated) wire.

        ``floor`` is the restored checkpoint's output clock: the fenced
        timeline's emissions at or below it are committed (the
        checkpoint acknowledged them and upstream buffers were trimmed,
        so nothing will ever re-derive them) and receivers keep
        accepting them even under the stale epoch; rebuild-based
        recoveries pass 0 because they re-emit everything from a zeroed
        clock under a fresh slot uid.
        """
        old_epoch = self.epoch_of(slot_uid)
        epoch = old_epoch + 1
        self.slot_epochs[slot_uid] = epoch
        self.fence_floors[(slot_uid, old_epoch)] = floor
        old = self.instances.get(slot_uid)
        if old is not None:
            self.external_store.fence(old.op_name, slot_uid, epoch)
        self.telemetry.event(
            "slot_fenced",
            old.op_name if old is not None else "",
            slot=slot_uid,
            epoch=epoch,
        )
        return epoch

    def notify_fenced(
        self, zombie: OperatorInstance, via_vm: VirtualMachine | None = None
    ) -> None:
        """Tell a superseded instance its slot was re-epoched.

        The notice rides the network as a control message from
        ``via_vm`` (the successor's VM, or the detector's monitor VM),
        so a zombie on the far side of a partition learns of its
        replacement only once the partition heals — until then the
        epoch stamps on its output keep it harmless.
        """
        if not zombie.alive or not zombie.vm.alive:
            return
        epoch = self.epoch_of(zombie.uid)
        if zombie.epoch >= epoch:
            return
        src = via_vm if via_vm is not None and via_vm.alive else None
        self.network.send(
            src,
            zombie.vm,
            self.config.fault.heartbeat_bytes,
            zombie.on_fence_notice,
            epoch,
            kind="control",
        )

    def worker_instances(self) -> list[OperatorInstance]:
        """All live non-source/sink instances."""
        return [
            inst
            for inst in self.instances.values()
            if inst.alive and not inst.is_source and not inst.is_sink
        ]

    def worker_vm_count(self) -> int:
        """Number of live worker VMs."""
        return len(self.worker_instances())

    def record_vm_count(self) -> None:
        """Sample the VM-count time series."""
        now = self.sim.now
        self.metrics.timeseries("vms:workers").record(now, self.worker_vm_count())
        self.metrics.timeseries("vms:billed").record(
            now, self.provider.vm_count_allocated()
        )

    # ------------------------------------------------------------- backups

    def backup_checkpoint(self, instance: OperatorInstance, ckpt: Checkpoint) -> None:
        """backup-state(o): ship a checkpoint to the chosen upstream VM."""
        target = self.choose_backup_vm(instance)
        if target is None:
            return
        cfg = self.config.checkpoint
        size = ckpt.size_bytes(cfg.bytes_per_entry, cfg.bytes_per_tuple)
        # The span rides along the simulated message and is closed on
        # arrival in _store_backup — the checkpoint's network hop is the
        # causal link between the owner VM and the backup VM.
        span = self.telemetry.start_span(
            f"checkpoint.backup:{instance.op_name}",
            kind="checkpoint",
            slot=instance.uid,
            op=instance.op_name,
            seq=ckpt.seq,
            bytes=size,
            incremental=ckpt.incremental,
            src_vm=instance.vm.vm_id,
            dst_vm=target.vm_id,
        )
        self.network.send(
            instance.vm,
            target,
            size,
            self._store_backup,
            ckpt,
            target,
            span,
            instance.epoch,
            kind="control",
        )

    def choose_backup_vm(self, instance: OperatorInstance) -> VirtualMachine | None:
        """Pick backup(o) among upstream VMs: hash(id(o)) mod |up(o)|."""
        upstream_ops = self.query_manager.upstream_of(instance.op_name)
        candidates: list[OperatorInstance] = []
        for op_name in upstream_ops:
            for slot in self.query_manager.slots_of(op_name):
                up = self.live_instance(slot.uid)
                if up is not None:
                    candidates.append(up)
        if not candidates:
            return None
        candidates.sort(key=lambda inst: inst.uid)
        return candidates[instance.uid % len(candidates)].vm

    def store_backup_sync(
        self, ckpt: "Checkpoint | EpochCut", target: VirtualMachine
    ) -> None:
        """Store a backup without a network hop (control-plane commit).

        Fluid chunk commits use this: the instant routing points a key
        range at a target partition, that partition must be recoverable
        (Algorithm 2, line 8 — the scale out itself is fault tolerant);
        a backup still on the wire would leave a window where committed
        chunks die with the target VM.  Accepts the raw payload or an
        :class:`EpochCut` descriptor.
        """
        self._store_backup(as_checkpoint(ckpt), target)

    def _store_backup(
        self,
        ckpt: Checkpoint,
        target: VirtualMachine,
        span=None,
        epoch: int | None = None,
    ) -> None:
        if span is not None:
            self.telemetry.end_span(span)
            # Registered under the slot uid: a later recovery restoring
            # from this backup can name the shipment as a causal parent.
            self.telemetry.tracer.link(("backup", ckpt.slot_uid), span)
        if epoch is not None and epoch < self.epoch_of(ckpt.slot_uid):
            # A zombie's checkpoint caught mid-flight by a fence: its seq
            # may exceed the successor's (both continued from one base),
            # so the epoch check must come before the staleness check —
            # accepting it would overwrite the successor's backup with
            # state from a condemned timeline.
            self.metrics.increment("checkpoints_fenced_dropped")
            return
        current = self.backup_of(ckpt.slot_uid)
        if current is not None and current.seq >= ckpt.seq:
            # A newer backup already landed — e.g. a fluid chunk commit
            # stored synchronously while this shipment was on the wire.
            # Storing the stale one would fail, and moving the location
            # to it would orphan the newer state.
            self.metrics.increment("checkpoints_stale_dropped")
            return
        store = self.backup_stores.setdefault(target.vm_id, BackupStore())
        if ckpt.incremental:
            ckpt = self._materialize_delta(ckpt, store)
            if ckpt is None:
                return
        store.store(ckpt)
        previous = self.backup_locations.get(ckpt.slot_uid)
        if previous is not None and previous.vm_id != target.vm_id:
            old_store = self.backup_stores.get(previous.vm_id)
            if old_store is not None:
                old_store.delete(ckpt.slot_uid)
        self.backup_locations[ckpt.slot_uid] = target
        self.metrics.increment("checkpoints_stored")
        # Output buffers upstream of the checkpointed operator can now be
        # trimmed up to the τ vector (Algorithm 1, line 4) — unless a
        # scale-out/recovery holds a trim lock because it is pinned to an
        # earlier checkpoint of this slot.
        if ckpt.slot_uid in self.trim_locks:
            return
        for up_uid, ts in ckpt.positions.items():
            upstream = self.live_instance(up_uid)
            if upstream is not None:
                upstream.trim_buffer_to(ckpt.slot_uid, ts)

    def _materialize_delta(
        self, delta: Checkpoint, store: BackupStore
    ) -> Checkpoint | None:
        """Apply an incremental checkpoint onto its stored base.

        When the base is missing (first delta after the backup moved to a
        different VM, or the base VM died) the owner is told to take a
        full checkpoint next time and the delta is discarded.
        """
        from repro.core.checkpoint import materialize_increment

        base = store.retrieve(delta.slot_uid) if store.has(delta.slot_uid) else None
        if base is not None and not base.incremental and base.seq == delta.base_seq:
            return materialize_increment(base, delta)
        self.metrics.increment("incremental_base_missing")
        owner = self.live_instance(delta.slot_uid)
        if owner is not None:
            owner.force_full_checkpoint()
        return None

    def backup_of(self, slot_uid: int) -> Checkpoint | None:
        """The most recent surviving backup for a slot, if any."""
        vm = self.backup_locations.get(slot_uid)
        if vm is None or not vm.alive:
            return None
        store = self.backup_stores.get(vm.vm_id)
        if store is None or not store.has(slot_uid):
            return None
        return store.retrieve(slot_uid)

    def drop_backup(self, slot_uid: int) -> None:
        """delete-backup for a slot that no longer exists."""
        vm = self.backup_locations.pop(slot_uid, None)
        if vm is None:
            return
        store = self.backup_stores.get(vm.vm_id)
        if store is not None:
            store.delete(slot_uid)

    # -------------------------------------------------------------- failure

    def notify_instance_failed(self, instance: OperatorInstance) -> None:
        """Called by an instance when its VM crashes."""
        now = self.sim.now
        self.telemetry.record_failure(
            instance.uid, instance.op_name, instance.vm.vm_id
        )
        self.metrics.mark_event(
            now, "failure", repr(instance.slot), slot=instance.uid
        )
        self.record_vm_count()
        # The dead VM's edges will never carry another message (recovery
        # lands on a fresh VM); drop their in-order release clocks.
        self.network.prune_edges(instance.vm.vm_id)
        if self.config.flow.enabled:
            # Credits held by the dead receiver can never be granted
            # back: every live sender forgets that edge's account so it
            # cannot wedge against a grant that will never arrive.
            for other in self.instances.values():
                if other is not instance and other.alive:
                    other.release_credits_for(instance.uid)
        self._handle_lost_backups(instance.vm)
        # Barrier mode: the dead slot can never report its cut, so every
        # in-flight epoch aborts and parked tuples release (no-op in
        # phase mode, which keeps no epochs in flight).
        self.checkpointer.on_instance_failed(instance)
        if self.recovery is None or self.config.fault.strategy == STRATEGY_NONE:
            return
        if self.phi_detector is not None:
            # Message-based detection: the crash is observed only through
            # missing heartbeats — no omniscient constant-delay oracle.
            return
        self.sim.schedule(
            self.config.fault.detection_delay,
            self.recovery.on_failure_detected,
            instance,
            priority=PRIORITY_CONTROL,
        )

    def _handle_lost_backups(self, vm: VirtualMachine) -> None:
        """Backups stored on a crashed VM are gone; owners re-checkpoint."""
        store = self.backup_stores.pop(vm.vm_id, None)
        if store is None:
            return
        for owner_uid in store.owners():
            located = self.backup_locations.get(owner_uid)
            if located is not None and located.vm_id == vm.vm_id:
                del self.backup_locations[owner_uid]
            owner = self.live_instance(owner_uid)
            if owner is not None:
                # Re-establish a backup as soon as possible.
                self.sim.schedule(
                    0.05, owner.take_checkpoint, priority=PRIORITY_CONTROL
                )

    def retire_backup_store(self, vm: VirtualMachine) -> None:
        """A VM is leaving service gracefully (its operator was replaced).

        Backups it held must move: live owners re-checkpoint immediately,
        and in-flight scale-outs that were partitioning state on this VM
        abort (and retry through the normal policy/recovery paths).
        Unlike a crash, the retiring VM's bytes are still intact — so a
        backup whose owner is *dead* is relocated to a surviving VM
        instead of discarded.  That backup is the slot's sole recovery
        source (a dead owner cannot re-checkpoint), and the retirement
        may well be the side effect of a concurrent false-positive
        recovery fencing a healthy zombie: dropping it would leave the
        genuinely failed slot permanently unrecoverable.
        """
        if self.reconfig is not None:
            self.reconfig.abort_operations_on_backup_vm(vm)
        store = self.backup_stores.pop(vm.vm_id, None)
        if store is None:
            return
        for owner_uid in store.owners():
            located = self.backup_locations.get(owner_uid)
            if located is not None and located.vm_id == vm.vm_id:
                del self.backup_locations[owner_uid]
            owner = self.live_instance(owner_uid)
            if owner is not None:
                # Re-establish a backup as soon as possible.
                self.sim.schedule(
                    0.05, owner.take_checkpoint, priority=PRIORITY_CONTROL
                )
            else:
                self._relocate_backup(vm, store.retrieve(owner_uid))

    def _relocate_backup(self, source: VirtualMachine, ckpt: Checkpoint) -> None:
        """Ship a dead owner's backup off a retiring VM before it goes.

        The target follows the normal backup placement for the owner's
        slot when possible, else any surviving worker VM.  The shipment
        is a real network transfer stamped with the slot's current
        epoch, so a fence racing the relocation drops it like any other
        stale checkpoint.
        """
        owner = self.instances.get(ckpt.slot_uid)
        target = self.choose_backup_vm(owner) if owner is not None else None
        if target is None or not target.alive or target.vm_id == source.vm_id:
            hosts = {
                inst.vm.vm_id: inst.vm
                for inst in self.instances.values()
                if inst.alive
                and inst.vm.alive
                and inst.vm.vm_id != source.vm_id
            }
            target = hosts[min(hosts)] if hosts else None
        if target is None:
            self.metrics.increment("backups_stranded_on_retirement")
            return
        cfg = self.config.checkpoint
        size = ckpt.size_bytes(cfg.bytes_per_entry, cfg.bytes_per_tuple)
        self.metrics.increment("backups_relocated")
        self.telemetry.event(
            "backup_relocated",
            f"slot {ckpt.slot_uid} seq {ckpt.seq}: "
            f"vm {source.vm_id} -> vm {target.vm_id}",
            slot=ckpt.slot_uid,
            src_vm=source.vm_id,
            dst_vm=target.vm_id,
        )
        self.network.send(
            source,
            target,
            size,
            self._store_backup,
            ckpt,
            target,
            None,
            self.epoch_of(ckpt.slot_uid),
            kind="control",
        )

    # -------------------------------------------------------------- results

    def counter(self, name: str) -> float:
        """Read one metrics counter."""
        return self.metrics.counter(name)

    def summary(self) -> dict[str, Any]:
        """A quick run summary used by examples and smoke tests."""
        parallelism = {
            name: self.query_manager.parallelism_of(name)
            for name in (self.query_manager.query.operators if self.query_manager.query else {})
        }
        return {
            "time": self.sim.now,
            "worker_vms": self.worker_vm_count(),
            "billed_vms": self.provider.vm_count_allocated(),
            "parallelism": parallelism,
            "checkpoints_stored": self.counter("checkpoints_stored"),
            "scale_outs": len(self.metrics.events_of_kind("scale_out")),
            "failures": len(self.metrics.events_of_kind("failure")),
            "recoveries": len(self.metrics.events_of_kind("recovery_complete")),
        }
