"""Operator instances: the physical realisation of one execution-graph slot.

An :class:`OperatorInstance` runs one partition of one logical operator on
one VM.  It owns the three kinds of externalised state from §3.1:

* processing state θ (with the τ vector and the logical output clock),
* buffer state β (output buffers per downstream logical operator),
* a local mirror of the routing state ρ toward each downstream operator.

It implements the data plane (receive → queue on the VM CPU → process →
emit/dispatch) and the per-instance halves of the state management
primitives: taking checkpoints, trimming buffers, replaying buffers, and
being restored from a checkpoint.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Callable

from repro.config import CHECKPOINT_MODE_BARRIER
from repro.core.backend import backend_for
from repro.core.checkpoint import Checkpoint, EpochCut
from repro.core.operator import Operator, OperatorContext
from repro.core.state import (
    OutputBuffer,
    ProcessingState,
    RoutingState,
    _copy_value as _copy_state_value,
)
from repro.core.tuples import Tuple, TupleBlock, stable_hash
from repro.errors import RuntimeStateError
from repro.sim.network import KIND_CREDIT
from repro.sim.simulator import PeriodicTask
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.execution import Slot
    from repro.runtime.system import StreamProcessingSystem


class InstanceStatus(enum.Enum):
    RUNNING = "running"
    PAUSED = "paused"
    STOPPED = "stopped"
    FAILED = "failed"


#: Replay-flagged tuples are foreign re-derivations: drop them (default).
REPLAY_DROP = "drop"
#: Deduplicate replays against the duplicate-filter watermarks — the mode
#: of an R+SM-restored instance, whose watermarks come from the restored
#: τ vector.
REPLAY_DEDUP = "dedup"
#: Re-process replays unconditionally — the rebuild mode of the baseline
#: strategies (fresh state) and of intermediate operators re-deriving a
#: failed operator's input during source replay.
REPLAY_ACCEPT = "accept"


class _BarrierAlignment:
    """Per-epoch barrier-alignment state at one operator instance.

    Created when the first input barrier of an epoch arrives.  ``awaited``
    holds the upstream slot uids whose barrier is still outstanding;
    ``blocked`` the ones whose barrier already arrived — data from a
    blocked input is *parked* (kept raw, pre-admission) so it cannot leak
    into this epoch's cut ahead of the slower inputs, and is re-delivered
    in arrival order once the cut is taken (or the epoch aborts).
    """

    __slots__ = ("awaited", "blocked", "parked", "started_at")

    def __init__(self, awaited: set[int], started_at: float) -> None:
        self.awaited = awaited
        self.blocked: set[int] = set()
        #: ("t", tuple) and ("b", batch) items in arrival order.
        self.parked: list[tuple[str, Any]] = []
        self.started_at = started_at


class OperatorInstance:
    """One partition of a logical operator deployed on a VM."""

    def __init__(
        self,
        system: "StreamProcessingSystem",
        operator: Operator,
        slot: "Slot",
        vm: VirtualMachine,
        downstream_names: list[str],
        is_source: bool = False,
        is_sink: bool = False,
        buffered_downstreams: set[str] | None = None,
    ) -> None:
        self.system = system
        self.operator = operator
        self.slot = slot
        self.vm = vm
        self.is_source = is_source
        self.is_sink = is_sink
        #: Active-replication replicas process and keep state but emit
        #: nothing until promoted.
        self.is_replica = False
        #: Fencing epoch this instance emits under, frozen at build time.
        #: A recovery install bumps the slot's epoch *before* building
        #: the replacement, so a zombie predecessor keeps the old value
        #: and every receiver can tell its traffic apart (0 for every
        #: instance of a never-fenced slot — the default-path no-op).
        self.epoch = system.epoch_of(slot.uid)
        self.status = InstanceStatus.RUNNING
        #: Where this instance's state entries live (memory / spill /
        #: external tiers) — see :mod:`repro.core.backend`.  The default
        #: memory backend is a pass-through around ``initial_state()``.
        self.backend = backend_for(
            system.config.state_backend,
            op_name=operator.name,
            slot_uid=slot.uid,
            is_source=is_source,
            is_sink=is_sink,
            io_cost=self._charge_state_io,
            external_store=system.external_store,
            epoch=self.epoch,
        )
        self.state: ProcessingState = self.backend.initial_state(operator)
        self.buffers: dict[str, OutputBuffer] = {
            name: OutputBuffer() for name in downstream_names
        }
        #: Downstream operators for which output tuples are retained.
        #: Sinks cannot fail, so buffering toward them is pointless; the
        #: source-replay baseline only buffers at sources.
        self._buffered_downs: set[str] = (
            set(downstream_names)
            if buffered_downstreams is None
            else set(buffered_downstreams)
        )
        self.routing: dict[str, RoutingState] = {}
        #: Highest timestamp accepted per origin slot uid (duplicate filter).
        self._arrival_wm: dict[int, int] = {}
        #: Emission suppression bound per input slot uid — outputs whose
        #: triggering input is at or below this were already emitted by the
        #: pre-scale-out instance and must not be emitted again.
        self._suppress_until: dict[int, int] = {}
        #: How replay-flagged tuples are handled (see module constants):
        #: dropped as foreign re-derivations (default), deduplicated
        #: against the restored τ vector (R+SM recovery target), or
        #: re-processed unconditionally (UB/SR rebuild path).
        self.replay_mode = REPLAY_DROP
        #: τ vector frozen at restore time; the duplicate floor for
        #: replay-flagged tuples in dedup mode.
        self._replay_dedup_floor: dict[int, int] = {}
        self._backlog_weight = 0.0
        self._ckpt_seq = 0
        #: Whether the next checkpoint may be a delta (a full one has been
        #: stored and dirty tracking has run since).
        self._can_increment = False
        self._ckpt_task: PeriodicTask | None = None
        self._timer_task: PeriodicTask | None = None
        self._age_trim_task: PeriodicTask | None = None
        self._current_input: Tuple | None = None
        self._replay_expected = 0
        self._replay_done: Callable[[], None] | None = None
        self._replay_flagged_only = False
        #: (slot, ts) pairs already counted toward the expected replays —
        #: a network-duplicated copy must not double-count (it would end
        #: the drain early and flip replay_mode while genuine replays are
        #: still in flight).
        self._replay_seen: set[tuple[int, int]] | None = None
        #: Exact (slot, ts) membership of the current drain's replay wave
        #: (fluid chunk drains pass it): flagged arrivals outside the set
        #: — stray duplicates of *earlier* waves — must not advance the
        #: drain's completion count.
        self._replay_ids: set[tuple[int, int]] | None = None
        #: (slot, ts) pairs of wave replays a dead feeder never delivered.
        #: The feeder's recovery re-derives them as *fresh* sends at or
        #: below the arrival watermark; exactly these may pass the
        #: duplicate filter — a scalar rewind would also re-admit fresh
        #: tuples processed since the wave was cut.  The accompanying
        #: snapshot of the drain's dedup context still applies: an
        #: undelivered pair may predate the chunk floor (its effect rode
        #: the chunk's state), so a gap fill faces the same reflection
        #: test the flagged replay would have.
        self._replay_gap_ids: set[tuple[int, int]] = set()
        self._gap_intervals: list = []
        self._gap_floor: dict[int, int] = {}
        self._gap_wm_start: dict[int, int] = {}
        #: Remaining expected replays per origin slot uid, so the engine
        #: can release one feeder's share if that feeder dies mid-drain.
        self._replay_by_slot: dict[int, int] | None = None
        #: Fresh (non-replay) tuples parked while a dedup-mode replay
        #: drain is in progress.  Processing fresh input *before* pending
        #: replays would re-derive outputs under different out_clock
        #: values, breaking the downstream duplicate filter's assumption
        #: that (slot, ts) identifies one payload.
        self._held_while_draining: list[Tuple] = []
        #: Fluid migration, source side: the key intervals of the chunk
        #: currently in flight (fresh tuples for them are parked in
        #: ``_parked`` until the chunk commits or the migration aborts)
        #: and the intervals already committed away (tuples for them are
        #: dropped — the routing swap makes the upstream's post-commit
        #: replay deliver them to the new owner instead).
        self._parking_intervals: list = []
        self._migrated_intervals: list = []
        self._parked: list[Tuple] = []
        #: Fluid migration, target side: while draining one chunk's
        #: replays, keys inside these intervals dedup against the chunk's
        #: restored τ floor alone; keys outside (already owned and served
        #: live) also dedup against the watermark snapshot taken at the
        #: drain's start.
        self._drain_intervals: list = []
        self._drain_wm_start: dict[int, int] = {}
        #: Highest replay ts accepted per origin during an interval drain:
        #: replays stream ts-ordered per origin, so a network-duplicated
        #: copy lands at or below this and is dropped — the chunk floor
        #: cannot serve as this guard because keys outside the drain
        #: intervals are deliberately not judged against it.
        self._drain_replay_wm: dict[int, int] = {}
        #: Output batching (data-plane fast path): pending output tuples
        #: per destination slot uid, flushed by size, by linger timer, and
        #: at every control-plane barrier.  ``None`` when disabled.
        batching = system.config.batching
        self._batching = batching if batching.enabled else None
        self._batch_pending: dict[int, list[Tuple]] = {}
        self._linger_event = None
        self._latency_counter = 0
        #: Credit-based flow control (requires batching).  ``None`` keeps
        #: every hot-path check a single identity comparison.
        flow = system.config.flow
        self._flow = flow if (flow.enabled and batching.enabled) else None
        #: Sender side: remaining credit per downstream slot uid, lazily
        #: seeded with ``initial_credits`` on first flush toward a dest.
        self._credits: dict[int, float] = {}
        #: Destinations whose pending batch is held for lack of credit.
        self._blocked_dests: set[int] = set()
        #: Open backpressure tracer span per blocked destination.
        self._bp_spans: dict[int, Any] = {}
        #: Receiver side: processed/disposed weight per origin slot uid
        #: not yet granted back as credit.
        self._fc_ungranted: dict[int, float] = {}
        #: Whether the grant policy is currently deferring (gauge edge).
        self._fc_deferring = False
        #: Optional heavy-hitter sketch the hot-key detector attaches;
        #: fed from the admission path in ``_process_one``.  None (the
        #: default) keeps the data plane byte-identical to a system
        #: without hot-key detection.
        self.key_sketch = None
        # Counters (weighted tuples).
        self.processed_weight = 0.0
        self.emitted_weight = 0.0
        self.dropped_duplicates = 0.0
        self.dropped_overflow = 0.0
        self.suppressed_weight = 0.0
        #: Stale-epoch deliveries rejected at this instance's doorstep.
        self.fenced_drops = 0.0
        #: Committed-prefix tuples accepted late under a stale epoch
        #: (held behind a partition while their sender was fenced).
        self.fenced_accepts = 0.0
        #: Highest sender epoch seen per origin slot (normal path).
        self._epoch_seen: dict[int, int] = {}
        #: Arrival watermark frozen per (origin slot, fenced epoch) at
        #: the first delivery after that epoch's timeline was cut: the
        #: boundary between what the condemned timeline already
        #: delivered here and its committed-but-undelivered prefix.
        self._fence_cuts: dict[tuple[int, int], int] = {}
        #: Dedup watermark for late committed-prefix deliveries (held
        #: messages release in per-edge FIFO order, so ts-ordered).
        self._fenced_wm: dict[int, int] = {}
        #: Barrier-mode (``checkpoint_mode=barrier``) epoch alignment,
        #: keyed by snapshot epoch; empty whenever no epoch is in flight
        #: here, which keeps the hot path a single falsy check.
        self._barrier_state: dict[int, _BarrierAlignment] = {}
        vm.occupant = self
        vm.on_failure(self._on_vm_failed)

    # ------------------------------------------------------------ identity

    @property
    def uid(self) -> int:
        return self.slot.uid

    @property
    def op_name(self) -> str:
        return self.operator.name

    @property
    def alive(self) -> bool:
        return self.status in (InstanceStatus.RUNNING, InstanceStatus.PAUSED)

    def is_quiescent(self) -> bool:
        """Whether this instance's VM has nothing queued or executing.

        Quiescence of every involved instance between consecutive polls
        is how the reconfiguration engine detects that a drain (merge
        quiesce, source-replay re-processing) has completed.
        """
        return not self.vm.busy and self.vm.queue_length == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Instance({self.slot!r} on VM {self.vm.vm_id}, {self.status.value})"

    # ----------------------------------------------------------- data plane

    def receive(self, tup: Tuple) -> None:
        """Entry point for tuples delivered by the network."""
        if not self.alive or not self.vm.alive:
            return
        if self._barrier_state and self._barrier_park(tup):
            return
        if self._admit(tup):
            work = tup.weight * self.operator.cost_per_tuple
            self.vm.submit(work, self._process, tup)
        self._note_replay_progress(tup)
        if self._flow is not None:
            self._fc_maybe_grant()

    def receive_stamped(self, tup: Tuple, epoch: int) -> None:
        """Receive one tuple stamped with its *sender's* fencing epoch.

        ``tup.slot`` names the sending slot, so the stamp is compared
        against that slot's current epoch.  A zombie predecessor
        (falsely declared dead, replaced, epoch bumped) emits under a
        superseded epoch; its *uncommitted* suffix — everything above
        the fence floor, which the successor re-derives under the same
        (slot, ts) stamps — is rejected here.  Its committed prefix (at
        or below the floor, i.e. covered by the checkpoint the successor
        restored from) is the sole copy of those tuples: it is accepted
        even under the stale epoch, deduplicated against what the
        condemned timeline already delivered before it was cut off.
        """
        if epoch < self.system.epoch_of(tup.slot):
            self._receive_fenced(tup, epoch)
            return
        self._note_epoch(tup.slot, epoch)
        self.receive(tup)

    def receive_batch_stamped(self, batch: list[Tuple], epoch: int) -> None:
        """Batched variant of :meth:`receive_stamped` (one sender, so one
        stamp covers the whole batch)."""
        if batch and epoch < self.system.epoch_of(batch[0].slot):
            for tup in batch:
                self._receive_fenced(tup, epoch)
            return
        if batch:
            self._note_epoch(batch[0].slot, epoch)
        self.receive_batch(batch)

    def receive_block_stamped(self, block: TupleBlock, epoch: int) -> None:
        """Columnar variant of :meth:`receive_batch_stamped`.

        A stale-epoch block decomposes to rows for the fencing judgement
        (committed-prefix acceptance is inherently per tuple).
        """
        if len(block) and epoch < self.system.epoch_of(block.slot):
            for tup in block.to_tuples():
                self._receive_fenced(tup, epoch)
            return
        if len(block):
            self._note_epoch(block.slot, epoch)
        self.receive_block(block)

    def _note_epoch(self, slot: int, epoch: int) -> None:
        """Record the first delivery from a newer timeline of ``slot``.

        The arrival watermark at that instant bounds everything the
        superseded timelines delivered here, so it is frozen as their
        fence cut: a later stale-epoch delivery at or below the cut is a
        duplicate of something already processed, one above it (and
        within the fence floor) is a committed tuple this instance has
        not seen.
        """
        seen = self._epoch_seen.get(slot, 0)
        if epoch > seen:
            wm = self._arrival_wm.get(slot, -1)
            for old in range(seen, epoch):
                self._fence_cuts.setdefault((slot, old), wm)
            self._epoch_seen[slot] = epoch
            if self.is_sink and wm >= 0:
                # Timer-driven upstreams re-derive the condemned
                # uncommitted suffix on their own flush schedule, so the
                # successor may map the same out-clock range to a
                # *different* ts→content assignment than what the zombie
                # already delivered (e.g. two windows interleaved per key
                # in one late tick).  Ts-based dedup is therefore unsound
                # across the timeline switch at a sink: roll the arrival
                # watermark back to the committed floor so the successor's
                # re-derivation is re-admitted, and rely on the collector
                # being content-idempotent (last-write-wins per result
                # key) to absorb the overlap.  Stateful mid-pipeline
                # receivers must NOT roll back — their state already
                # reflects the delivered suffix, and their own emissions
                # stay ts-deterministic, so re-admission would double
                # count.  The frozen fence cut above still bounds the
                # *stale*-epoch dedup path, which is unaffected.
                floor = min(
                    self.system.fence_floor(slot, old)
                    for old in range(seen, epoch)
                )
                if floor < wm:
                    self._arrival_wm[slot] = floor

    def _receive_fenced(self, tup: Tuple, epoch: int) -> None:
        """Judge one stale-epoch delivery: committed prefix or condemned.

        Replayed tuples never qualify — a fenced feeder's replay duty
        passes to its successor, whose re-derivations fill any gap.
        """
        slot = tup.slot
        cut = self._fence_cuts.get((slot, epoch))
        if cut is None:
            # No newer-epoch delivery has advanced the watermark yet, so
            # the current value still bounds the condemned timeline's
            # deliveries here; freeze it now.
            cut = self._arrival_wm.get(slot, -1)
            self._fence_cuts[(slot, epoch)] = cut
        floor = self.system.fence_floor(slot, epoch)
        if tup.replay or tup.ts > floor:
            self._reject_fenced(tup.weight)
            return
        if tup.ts <= cut or tup.ts <= self._fenced_wm.get(slot, -1):
            # Already delivered by the condemned timeline before it was
            # cut off, or a network-duplicated copy of an accepted late
            # delivery (held messages release in FIFO order per edge).
            self.dropped_duplicates += tup.weight
            self.system.metrics.increment(
                f"duplicates:{self.op_name}", tup.weight
            )
            return
        if not self.alive or not self.vm.alive:
            return
        self._fenced_wm[slot] = tup.ts
        self.fenced_accepts += tup.weight
        self.system.metrics.increment(f"fenced_accepts:{self.op_name}", tup.weight)
        work = tup.weight * self.operator.cost_per_tuple
        self.vm.submit(work, self._process, tup)

    def _reject_fenced(self, weight: float) -> None:
        self.fenced_drops += weight
        self.system.metrics.increment(f"fenced_drops:{self.op_name}", weight)

    def receive_batch(self, batch: list[Tuple]) -> None:
        """Entry point for a coalesced batch from one upstream instance.

        Admission (duplicate filter, replay dedup, capacity) runs per
        tuple exactly as on the unbatched path, but all accepted tuples
        are processed under a single CPU work item — the kernel sees one
        completion event per batch instead of one per tuple.
        """
        if not self.alive or not self.vm.alive:
            return
        if self._barrier_state and batch and not batch[0].replay:
            for state in self._barrier_state.values():
                if batch[0].slot in state.blocked:
                    state.parked.append(("b", batch))
                    return
        admit = self._admit
        accepted = [tup for tup in batch if admit(tup)]
        if accepted:
            work = sum(t.weight for t in accepted) * self.operator.cost_per_tuple
            self.vm.submit(work, self._process_batch, accepted)
        if self._replay_done is not None:
            for tup in batch:
                self._note_replay_progress(tup)
        if self._flow is not None:
            self._fc_maybe_grant()

    def receive_block(self, block: TupleBlock) -> None:
        """Columnar entry point: admit a whole block in one pass.

        The fast path exploits the block invariants (one origin slot,
        rows in strictly ascending ``ts``): the duplicate filter becomes
        a prefix scan, migration carve-outs become key-interval slices
        over the precomputed ``key_pos`` column, and the watermark
        advances once.  Anything with per-tuple semantics — barrier
        alignment, replay drains, gap fills, a bounded queue — decomposes
        the block and takes the row path, which is bit-identical.
        """
        if not self.alive or not self.vm.alive:
            return
        if (
            self._barrier_state
            or block.replay
            or self.replay_mode != REPLAY_DROP
            or self._replay_done is not None
            or self._replay_gap_ids
            or self.system.config.queue_capacity is not None
        ):
            self.receive_batch(block.to_tuples())
            return
        slot = block.slot
        n = len(block)
        # Duplicate filter first (mirroring :meth:`_admit` order): rows
        # at or below the arrival watermark form a contiguous prefix.
        wm = self._arrival_wm.get(slot, -1)
        ts_col = block.ts
        if n and ts_col[n - 1] <= wm:
            start = n
        else:
            start = 0
            while start < n and ts_col[start] <= wm:
                start += 1
        if start:
            dropped = sum(block.weight[i] for i in range(start))
            self.dropped_duplicates += dropped
            self.system.metrics.increment(f"duplicates:{self.op_name}", dropped)
            self._fc_note(slot, dropped)
            block = block.suffix(start)
            n = len(block)
        if not n:
            if self._flow is not None:
                self._fc_maybe_grant()
            return
        last_ts = -1
        if self._parking_intervals or self._migrated_intervals:
            if self._migrated_intervals:
                migrated, block = block.split_by_intervals(
                    self._migrated_intervals
                )
                if len(migrated):
                    # Straggler rows for committed-away keys: dropped, and
                    # the watermark must NOT advance past them alone.
                    weight = migrated.total_weight()
                    self.system.metrics.increment(
                        f"migrated_drop:{self.op_name}", weight
                    )
                    self._fc_note(slot, weight)
            if self._parking_intervals and len(block):
                parked, block = block.split_by_intervals(
                    self._parking_intervals
                )
                if len(parked):
                    # Parked rows are *accepted* (watermark advances) but
                    # wait out the in-flight chunk in `_parked`.
                    last_ts = parked.ts[-1]
                    self._parked.extend(parked.to_tuples())
        n = len(block)
        if n and block.ts[-1] > last_ts:
            last_ts = block.ts[-1]
        if last_ts > wm:
            self._arrival_wm[slot] = last_ts
        if n:
            weight = block.total_weight()
            self._backlog_weight += weight
            self.vm.submit(
                weight * self.operator.cost_per_tuple, self._process_block, block
            )
        if self._flow is not None:
            self._fc_maybe_grant()

    def _admit(self, tup: Tuple) -> bool:
        """The admission pipeline shared by single and batched delivery.

        Returns ``True`` when the tuple should be queued for processing;
        all filters (replay dedup, duplicate watermarks, queue capacity)
        and their side effects (counters, watermark advances, backlog
        accounting, parking during drains) happen here.
        """
        slot = tup.slot
        ts = tup.ts
        arrival_wm = self._arrival_wm
        if tup.replay:
            duplicate = self.replay_mode == REPLAY_DROP
            if not duplicate and self.replay_mode == REPLAY_DEDUP:
                if self._drain_intervals:
                    # Interval-aware chunk drain (fluid migration): a key
                    # inside the draining chunk dedups against the chunk's
                    # τ floor, frozen when its parking began — everything
                    # at or below it rode the chunk's state.  A key this
                    # instance already owned dedups against the watermark
                    # snapshot from drain start *alone*: the commit-time
                    # trim removed everything its absorbed state reflects,
                    # and τ may sit above a delayed straggler whose replay
                    # is its only path here (the origin's τ advances with
                    # other keys the source still serves).
                    duplicate = ts <= self._drain_replay_wm.get(slot, -1)
                    if not duplicate:
                        position = stable_hash(tup.key)
                        if any(position in iv for iv in self._drain_intervals):
                            duplicate = ts <= self._replay_dedup_floor.get(
                                slot, -1
                            )
                        else:
                            duplicate = ts <= self._drain_wm_start.get(
                                slot, -1
                            )
                else:
                    # Compare against the τ vector frozen at restore time,
                    # not the live watermark: paced replays interleave with
                    # fresh traffic whose higher timestamps must not mask
                    # them.
                    duplicate = ts <= self._replay_dedup_floor.get(slot, -1)
            if duplicate:
                # Either a re-derivation from a recovery elsewhere in the
                # graph (drop mode) or a replayed tuple already reflected
                # in this instance's restored state (dedup mode).
                if self._replay_gap_ids:
                    self._replay_gap_ids.discard((slot, ts))
                self.dropped_duplicates += tup.weight
                self.system.metrics.increment(
                    f"duplicates:{self.op_name}", tup.weight
                )
                return False
        elif (
            self._replay_done is not None
            and self._replay_flagged_only
            and self.replay_mode == REPLAY_DEDUP
        ):
            # A restored instance is draining its replays: park fresh
            # tuples until the drain completes so re-derivations keep
            # their original out_clock values (exactly-once depends on
            # the (slot, ts) <-> payload mapping being stable).
            self._held_while_draining.append(tup)
            return False
        elif ts <= arrival_wm.get(slot, -1):
            gap_fill = False
            if self._replay_gap_ids and (slot, ts) in self._replay_gap_ids:
                # A wave replay its dead feeder never delivered, now
                # re-derived by the feeder's recovery.  Judge it exactly
                # as the replay would have been: a pair at or below the
                # chunk floor rode the chunk's state here already.
                self._replay_gap_ids.discard((slot, ts))
                if self._gap_intervals:
                    position = stable_hash(tup.key)
                    if any(position in iv for iv in self._gap_intervals):
                        gap_fill = ts > self._gap_floor.get(slot, -1)
                    else:
                        gap_fill = ts > self._gap_wm_start.get(slot, -1)
                else:
                    gap_fill = True
            if not gap_fill:
                # Duplicate of an already-accepted tuple (replayed after
                # a checkpoint covered it, or re-emitted by a recovered
                # upstream).
                self.dropped_duplicates += tup.weight
                self.system.metrics.increment(
                    f"duplicates:{self.op_name}", tup.weight
                )
                self._fc_note(slot, tup.weight)
                return False
        capacity = self.system.config.queue_capacity
        if capacity is not None and self._backlog_weight >= capacity:
            self.dropped_overflow += tup.weight
            self.system.metrics.increment(f"overflow:{self.op_name}", tup.weight)
            if not tup.replay:
                self._fc_note(slot, tup.weight)
            return False
        if not tup.replay and (self._parking_intervals or self._migrated_intervals):
            position = stable_hash(tup.key)
            if any(position in iv for iv in self._migrated_intervals):
                # Key already committed to its new owner: the routing swap
                # made the upstream replay this tuple at the target, so
                # the straggler copy here must not touch state.
                self.system.metrics.increment(
                    f"migrated_drop:{self.op_name}", tup.weight
                )
                self._fc_note(slot, tup.weight)
                return False
            if any(position in iv for iv in self._parking_intervals):
                # Key belongs to the chunk in flight: park until the chunk
                # commits (the upstream's post-swap replay covers it at
                # the target) or the migration aborts (re-injected here).
                # The watermark advances now — the tuple is *accepted*, so
                # a later network duplicate must not be parked twice.
                if ts > arrival_wm.get(slot, -1):
                    arrival_wm[slot] = ts
                self._parked.append(tup)
                return False
        if ts > arrival_wm.get(slot, -1):
            arrival_wm[slot] = ts
        if tup.replay and self.replay_mode == REPLAY_DEDUP:
            # Replays stream in ts order per origin slot, so advancing the
            # floor as they are accepted makes a network-duplicated copy
            # land at or below it and be dropped — without masking later
            # replays behind fresh traffic's higher watermarks.  Advance
            # only: during an interval drain the floor starts at the
            # chunk's τ, which may sit above replays for keys this
            # instance already owned — assignment would regress it below
            # state the absorbed chunk already reflects.
            if ts > self._replay_dedup_floor.get(slot, -1):
                self._replay_dedup_floor[slot] = ts
            if self._drain_intervals and ts > self._drain_replay_wm.get(slot, -1):
                self._drain_replay_wm[slot] = ts
        # An accepted delivery is (about to be) reflected: a released
        # wave pair delivered late must not be re-admitted again when its
        # feeder's recovery re-derives it.
        if self._replay_gap_ids:
            self._replay_gap_ids.discard((slot, ts))
        self._backlog_weight += tup.weight
        return True

    def _process(self, tup: Tuple) -> None:
        self._backlog_weight -= tup.weight
        if not self.alive:
            return
        self._process_one(tup)
        if self._flow is not None:
            self._fc_maybe_grant()

    def _process_batch(self, batch: list[Tuple]) -> None:
        for tup in batch:
            self._backlog_weight -= tup.weight
        if not self.alive:
            return
        for tup in batch:
            self._process_one(tup)
        if self._flow is not None:
            self._fc_maybe_grant()

    def _process_block(self, block: TupleBlock) -> None:
        """Run one admitted block through the operator.

        Operators with a vectorized kernel consume the whole block in one
        :meth:`~repro.core.operator.Operator.process_block` call; the
        rest (and any block arriving while emission suppression is
        active, which needs a per-row trigger) fall back to row-at-a-time
        ``on_tuple`` over the same rows.  τ advances once, to the last
        row — identical to per-row max-advance.
        """
        self._backlog_weight -= block.total_weight()
        if not self.alive:
            return
        slot = block.slot
        if self._parking_intervals or self._migrated_intervals:
            # Queued before a chunk was extracted: re-slice, exactly as
            # :meth:`_process_one` re-checks per row.
            if self._migrated_intervals:
                migrated, block = block.split_by_intervals(
                    self._migrated_intervals
                )
                if len(migrated):
                    weight = migrated.total_weight()
                    self.system.metrics.increment(
                        f"migrated_drop:{self.op_name}", weight
                    )
                    self._fc_note(slot, weight)
            if self._parking_intervals and len(block):
                parked, block = block.split_by_intervals(
                    self._parking_intervals
                )
                if len(parked):
                    self._parked.extend(parked.to_tuples())
            if not len(block):
                if self._flow is not None:
                    self._fc_maybe_grant()
                return
        sim = self.system.sim
        operator = self.operator
        fallback = True
        if not self._suppress_until:
            # Kernels have no per-row trigger, so the emit path can skip
            # the trigger/suppression/replay bookkeeping entirely — and
            # for the common single-downstream shape, fuse straight into
            # the output batcher with the routing lookups hoisted.
            emit_cb = self._block_emit() or self._emit_from_ctx
            ctx = OperatorContext(self.state, emit_cb, now=sim.now)
            fallback = not operator.process_block(block, ctx)
        if fallback:
            ctx = OperatorContext(self.state, self._emit_from_ctx, now=sim.now)
            try:
                for tup in block.to_tuples():
                    self._current_input = tup
                    operator.on_tuple(tup, ctx)
            finally:
                self._current_input = None
        self.state.advance(slot, block.ts[-1])
        weight = block.total_weight()
        self.processed_weight += weight
        if self.key_sketch is not None:
            offer = self.key_sketch.offer
            for key, w in zip(block.keys, block.weight):
                offer(key, w)
        metrics = self.system.metrics
        metrics.rate(
            f"processed:{self.op_name}", self.system.config.rate_bin
        ).record(sim.now, weight)
        if operator.measure_latency:
            every = self.system.config.latency_sample_every
            n = len(block)
            now = sim.now
            lat = metrics.latency(f"latency:{self.op_name}")
            created = block.created_at
            weights = block.weight
            if every == 1:
                for i in range(n):
                    lat.record(now, now - created[i], weights[i])
            else:
                # Same decimation stride the per-row counter would take.
                first = (every - self._latency_counter % every) - 1
                for i in range(first, n, every):
                    lat.record(now, now - created[i], weights[i] * every)
            self._latency_counter += n
        if self._flow is not None:
            self._fc_note(slot, weight)
            self._fc_maybe_grant()

    def _process_one(self, tup: Tuple) -> None:
        if (self._parking_intervals or self._migrated_intervals) and not tup.replay:
            # Queued before its chunk was extracted: the entries it would
            # update have left this instance, so it must not process here.
            # τ does not advance (the tuple is unprocessed); the watermark
            # already advanced at admission, matching parked arrivals.
            position = stable_hash(tup.key)
            if any(position in iv for iv in self._migrated_intervals):
                self.system.metrics.increment(
                    f"migrated_drop:{self.op_name}", tup.weight
                )
                self._fc_note(tup.slot, tup.weight)
                return
            if any(position in iv for iv in self._parking_intervals):
                self._parked.append(tup)
                return
        sim = self.system.sim
        self._current_input = tup
        ctx = OperatorContext(self.state, self._emit_from_ctx, now=sim.now)
        try:
            self.operator.on_tuple(tup, ctx)
        finally:
            self._current_input = None
        self.state.advance(tup.slot, tup.ts)
        self.processed_weight += tup.weight
        if self.key_sketch is not None:
            self.key_sketch.offer(tup.key, tup.weight)
        metrics = self.system.metrics
        metrics.rate(
            f"processed:{self.op_name}", self.system.config.rate_bin
        ).record(sim.now, tup.weight)
        if self.operator.measure_latency:
            every = self.system.config.latency_sample_every
            self._latency_counter += 1
            if self._latency_counter % every == 0:
                metrics.latency(f"latency:{self.op_name}").record(
                    sim.now, sim.now - tup.created_at, tup.weight * every
                )
        if self._flow is not None and not tup.replay:
            self._fc_note(tup.slot, tup.weight)

    # --------------------------------------------------------------- source

    def inject(self, key: Any, payload: Any, weight: int = 1) -> None:
        """Feed externally generated data into a source instance.

        The injection time is the tuple's creation time, so queueing at a
        saturated source shows up in end-to-end latency — this is the
        serialisation bottleneck that caps the paper's L-rating.
        """
        if not self.is_source:
            raise RuntimeStateError(f"inject called on non-source {self.slot!r}")
        sim = self.system.sim
        self.system.metrics.rate(
            "input", self.system.config.rate_bin
        ).record(sim.now, weight)
        if not self.alive or not self.vm.alive:
            self.system.metrics.increment("lost:source_down", weight)
            return
        flow = self._flow
        if flow is not None and flow.shed_at_source and self._blocked_dests:
            # Open-loop backpressure endpoint: the source's output is
            # blocked on downstream credit, so new input is shed here
            # instead of growing an unbounded pending batch.
            self.system.metrics.increment(
                f"backpressure_shed:{self.op_name}", weight
            )
            return
        capacity = self.system.config.queue_capacity
        if capacity is not None and self._backlog_weight >= capacity:
            self.dropped_overflow += weight
            self.system.metrics.increment(f"overflow:{self.op_name}", weight)
            return
        self._backlog_weight += weight
        work = weight * self.operator.cost_per_tuple
        self.vm.submit(work, self._process_injection, key, payload, weight, sim.now)

    def _process_injection(
        self, key: Any, payload: Any, weight: int, created_at: float
    ) -> None:
        self._backlog_weight -= weight
        if not self.alive:
            return
        self.processed_weight += weight
        self.system.metrics.rate(
            f"processed:{self.op_name}", self.system.config.rate_bin
        ).record(self.system.sim.now, weight)
        self._emit(key, payload, weight, created_at, to=None)

    # ------------------------------------------------------------- emission

    def _emit_from_ctx(
        self,
        key: Any,
        payload: Any,
        weight: int,
        created_at: float | None,
        to: str | None,
    ) -> None:
        trigger = self._current_input
        if created_at is None:
            created_at = (
                trigger.created_at if trigger is not None else self.system.sim.now
            )
        # The replay flag only propagates along the source-replay rebuild
        # path (accept mode), where downstream re-derivations stand in for
        # outputs the rest of the graph already consumed.
        replay = (
            trigger is not None
            and trigger.replay
            and self.replay_mode == REPLAY_ACCEPT
        )
        if (
            trigger is not None
            and self._suppress_until
            and trigger.ts <= self._suppress_until.get(trigger.slot, -1)
        ):
            # The pre-scale-out instance already emitted the outputs for
            # this input; re-processing only rebuilds state (§4.3).
            self.suppressed_weight += weight
            return
        self._emit(key, payload, weight, created_at, to, replay)

    def _block_emit(self) -> Callable[..., None] | None:
        """A fused emit callback for one kernel invocation, or ``None``.

        Valid only while a vectorized kernel runs: there is no current
        input, so no suppression window, no replay propagation, and no
        per-row trigger lineage — ``created_at`` comes from the kernel.
        For the dominant one-downstream, batching-on shape this collapses
        the ``_emit_from_ctx → _emit → _dispatch → _batch_add`` chain
        into one closure with the routing table, β buffer and pending
        batches pre-bound.  Emitted tuples, timestamps, buffering and
        flush triggers are identical to the generic path.
        """
        if (
            self.is_sink
            or self.is_replica
            or len(self.buffers) != 1
            or self._batching is None
        ):
            return None
        (down_name,) = self.buffers
        routing = self.routing.get(down_name)
        if routing is None:
            return None
        state = self.state
        route = routing.route_position
        buffer_append = (
            self.buffers[down_name].append
            if down_name in self._buffered_downs
            else None
        )
        pending = self._batch_pending
        batching = self._batching
        max_tuples = batching.max_tuples
        slot_uid = self.slot.uid
        sim = self.system.sim
        now = sim.now

        def emit(
            key: Any,
            payload: Any,
            weight: int,
            created_at: float | None,
            to: str | None,
        ) -> None:
            if to is not None and to != down_name:
                raise RuntimeStateError(
                    f"{self.op_name} emitted to unknown downstream {to!r}"
                )
            state.out_clock += 1
            tup = Tuple(
                state.out_clock,
                key,
                payload,
                weight,
                now if created_at is None else created_at,
                slot_uid,
            )
            self.emitted_weight += weight
            dest_uid = route(stable_hash(key))
            if buffer_append is not None:
                buffer_append(dest_uid, tup)
            batch = pending.get(dest_uid)
            if batch is None:
                batch = pending[dest_uid] = []
            batch.append(tup)
            if len(batch) >= max_tuples:
                self._flush_batch(dest_uid, force=False)
            elif self._linger_event is None:
                self._linger_event = sim.schedule(
                    batching.linger, self._linger_flush
                )

        return emit

    def _emit(
        self,
        key: Any,
        payload: Any,
        weight: int,
        created_at: float,
        to: str | None,
        replay: bool = False,
    ) -> None:
        if self.is_sink or self.is_replica or not self.buffers:
            return
        if to is not None:
            if to not in self.buffers:
                raise RuntimeStateError(
                    f"{self.op_name} emitted to unknown downstream {to!r}"
                )
            targets = [to]
        else:
            targets = list(self.buffers)
        self.state.out_clock += 1
        ts = self.state.out_clock
        self.emitted_weight += weight
        for down_name in targets:
            tup = Tuple(ts, key, payload, weight, created_at, self.slot.uid, replay)
            self._dispatch(down_name, tup)

    def _dispatch(self, down_name: str, tup: Tuple) -> None:
        routing = self.routing.get(down_name)
        if routing is None:
            raise RuntimeStateError(
                f"{self.slot!r} has no routing state toward {down_name}"
            )
        dest_uid = routing.route_position(stable_hash(tup.key))
        if down_name in self._buffered_downs:
            self.buffers[down_name].append(dest_uid, tup)
        if self._batching is not None and not tup.replay:
            # Replays bypass batching: their pacing and the receiver's
            # drain accounting are per-message.
            self._batch_add(dest_uid, tup)
        else:
            self._send(dest_uid, tup)

    def _send(self, dest_uid: int, tup: Tuple) -> None:
        system = self.system
        if system.replication is not None:
            # Active replication: tee every tuple to the destination's
            # replica as well.
            replica = system.replication.replica_of(dest_uid)
            if replica is not None:
                system.network.send(
                    self.vm,
                    replica.vm,
                    system.config.network.tuple_bytes,
                    replica.receive_stamped,
                    tup,
                    self.epoch,
                )
        dest = system.live_instance(dest_uid)
        if dest is None:
            # Destination currently dead; the tuple stays buffered and is
            # replayed once the destination is recovered.
            return
        system.network.send(
            self.vm,
            dest.vm,
            system.config.network.tuple_bytes,
            dest.receive_stamped,
            tup,
            self.epoch,
            fifo=self._flow is not None,
        )

    # ------------------------------------------------------------ batching

    def _batch_add(self, dest_uid: int, tup: Tuple) -> None:
        pending = self._batch_pending.setdefault(dest_uid, [])
        pending.append(tup)
        if len(pending) >= self._batching.max_tuples:
            self._flush_batch(dest_uid, force=False)
        elif self._linger_event is None:
            # One linger timer per instance, armed by the first pending
            # tuple; flushing every destination when it fires bounds the
            # added latency of all batches to one linger interval.
            self._linger_event = self.system.sim.schedule(
                self._batching.linger, self._linger_flush
            )

    def _linger_flush(self) -> None:
        self._linger_event = None
        if not self.alive or not self.vm.alive:
            self._batch_pending.clear()
            return
        self.flush_batches(force=False)

    def flush_batches(self, force: bool = True) -> None:
        """Flush every pending batch.

        Forced flushes are the control plane's barrier: checkpoint cuts,
        pause/stop and routing updates must see the wire drained, so they
        pierce backpressure (debiting the credit account below zero if
        need be) rather than stall reconfiguration behind a slow
        receiver.  The linger timer flushes unforced, leaving
        credit-starved batches pending until grants return.
        """
        if self._linger_event is not None:
            self._linger_event.cancel()
            self._linger_event = None
        for dest_uid in list(self._batch_pending):
            self._flush_batch(dest_uid, force)

    def _flush_batch(self, dest_uid: int, force: bool = True) -> None:
        batch = self._batch_pending.get(dest_uid)
        if not batch:
            self._batch_pending.pop(dest_uid, None)
            return
        flow = self._flow
        if flow is not None:
            credits = self._credits.get(dest_uid)
            if credits is None:
                credits = self._credits[dest_uid] = flow.initial_credits
            if self.system.live_instance(dest_uid) is not None:
                weight = sum(t.weight for t in batch)
                if not force and credits < weight:
                    # Credit covers only part of the batch: ship the
                    # longest prefix it does cover (FIFO order is
                    # load-bearing — rows must stay ts-ordered per
                    # origin) and hold the rest.  A held batch keeps
                    # growing, so flushing whole-batch-or-nothing would
                    # let it outgrow every future grant and wedge.
                    cut = 0
                    prefix = 0.0
                    for tup in batch:
                        if prefix + tup.weight > credits:
                            break
                        prefix += tup.weight
                        cut += 1
                    self._note_blocked(dest_uid)
                    if not cut:
                        return
                    self._batch_pending[dest_uid] = batch[cut:]
                    self._credits[dest_uid] = credits - prefix
                    self._ship(dest_uid, batch[:cut])
                    return
                self._credits[dest_uid] = credits - weight
            # A dead destination is never debited: the batch is dropped
            # on the wire (tuples stay in β for replay), and debiting
            # would leak credit the successor's grants can never repay.
            self._clear_blocked(dest_uid)
        del self._batch_pending[dest_uid]
        self._ship(dest_uid, batch)

    def _ship(self, dest_uid: int, batch: list[Tuple]) -> None:
        if len(batch) == 1:
            self._send(dest_uid, batch[0])
        elif self._batching.columnar:
            self._send_block(dest_uid, TupleBlock.from_tuples(batch))
        else:
            self._send_batch(dest_uid, batch)

    def _discard_batches(self) -> None:
        """Drop pending batches unsent (VM failure).  The tuples are still
        in β, so recovery replays them exactly like any other in-flight
        loss."""
        self._batch_pending.clear()
        if self._linger_event is not None:
            self._linger_event.cancel()
            self._linger_event = None
        for dest_uid in list(self._blocked_dests):
            self._clear_blocked(dest_uid)

    def _send_batch(self, dest_uid: int, batch: list[Tuple]) -> None:
        system = self.system
        size = system.config.network.tuple_bytes * len(batch)
        if system.replication is not None:
            replica = system.replication.replica_of(dest_uid)
            if replica is not None:
                system.network.send(
                    self.vm,
                    replica.vm,
                    size,
                    replica.receive_batch_stamped,
                    list(batch),
                    self.epoch,
                )
        dest = system.live_instance(dest_uid)
        if dest is None:
            # Destination currently dead; the batch stays buffered in β
            # and is replayed once the destination is recovered.
            return
        system.network.send(
            self.vm,
            dest.vm,
            size,
            dest.receive_batch_stamped,
            batch,
            self.epoch,
            fifo=self._flow is not None,
        )

    def _send_block(self, dest_uid: int, block: TupleBlock) -> None:
        """Ship one columnar block as a single network message.

        The block object is shared read-only with an active-replication
        replica (receivers slice into *new* blocks, never mutate), so the
        tee costs no copy.
        """
        system = self.system
        size = system.config.network.tuple_bytes * len(block)
        if system.replication is not None:
            replica = system.replication.replica_of(dest_uid)
            if replica is not None:
                system.network.send(
                    self.vm,
                    replica.vm,
                    size,
                    replica.receive_block_stamped,
                    block,
                    self.epoch,
                )
        dest = system.live_instance(dest_uid)
        if dest is None:
            # Destination currently dead; the rows stay buffered in β
            # and are replayed once the destination is recovered.
            return
        system.network.send(
            self.vm,
            dest.vm,
            size,
            dest.receive_block_stamped,
            block,
            self.epoch,
            fifo=self._flow is not None,
        )

    # ------------------------------------------------------- flow control

    @property
    def queue_depth(self) -> float:
        """Weighted input backlog plus output blocked on credit.

        The quantity the grant policy throttles on; exposed for benches
        and tests so they need not reach into private accounting.
        """
        return self._fc_queue_depth()

    def _fc_note(self, origin_uid: int, weight: float) -> None:
        """Receiver side: ``weight`` from ``origin_uid`` was processed or
        finally disposed of (duplicate, overflow, migrated, discarded
        park) and is grantable again.  Every admitted non-replay tuple
        must eventually be noted exactly once, or the sender's account
        drifts down and wedges."""
        if self._flow is None or weight <= 0:
            return
        self._fc_ungranted[origin_uid] = (
            self._fc_ungranted.get(origin_uid, 0.0) + weight
        )

    def _fc_queue_depth(self) -> float:
        """Weighted depth the grant policy throttles on: the input
        backlog plus any pending output blocked on downstream credit —
        counting the blocked output is what propagates backpressure
        upstream hop by hop."""
        depth = self._backlog_weight
        if self._blocked_dests:
            pending = self._batch_pending
            for dest_uid in self._blocked_dests:
                batch = pending.get(dest_uid)
                if batch:
                    depth += sum(t.weight for t in batch)
        return depth

    def _fc_maybe_grant(self) -> None:
        """Grant accumulated credit back to upstream senders.

        Grants are deferred entirely while the local queue depth sits at
        or above ``queue_ceiling`` — that deferral *is* the backpressure
        signal.  Below the ceiling, balances of at least
        ``grant_quantum`` are granted; once the backlog fully drains,
        every positive balance flushes so sub-quantum remainders cannot
        wedge an idle pipeline.
        """
        flow = self._flow
        if flow is None or not self._fc_ungranted:
            return
        if self._fc_queue_depth() >= flow.queue_ceiling:
            if not self._fc_deferring:
                self._fc_deferring = True
                self.system.telemetry.timeseries(
                    f"queue_depth:{self.op_name}"
                ).record(self.system.sim.now, self._fc_queue_depth())
                self.system.metrics.increment("backpressure.deferrals")
            return
        self._fc_deferring = False
        drain = self._backlog_weight <= 0
        system = self.system
        quantum = flow.grant_quantum
        size = flow.credit_bytes
        for origin_uid in list(self._fc_ungranted):
            amount = self._fc_ungranted[origin_uid]
            if amount < quantum and not drain:
                continue
            del self._fc_ungranted[origin_uid]
            sender = system.live_instance(origin_uid)
            if sender is None:
                continue
            system.network.send(
                self.vm,
                sender.vm,
                size,
                sender.receive_credits,
                self.uid,
                amount,
                kind=KIND_CREDIT,
            )

    def receive_credits(self, dest_uid: int, amount: float) -> None:
        """Sender side: a downstream instance granted credit back."""
        if self._flow is None or not self.alive or not self.vm.alive:
            return
        self._credits[dest_uid] = (
            self._credits.get(dest_uid, self._flow.initial_credits) + amount
        )
        if dest_uid in self._blocked_dests:
            self._flush_batch(dest_uid, force=False)

    def release_credits_for(self, failed_uid: int) -> None:
        """A downstream instance died: forget its credit account.

        Credits held by the dead receiver can never be granted back, so
        the account resets (the successor's edge lazily re-seeds at
        ``initial_credits``), the ungranted balance owed *to* it is
        dropped (its successor never debited us), and any batch held for
        it is force-flushed — the flush sees a dead destination, skips
        the debit, and leaves the tuples in β for replay.
        """
        if self._flow is None:
            return
        self._credits.pop(failed_uid, None)
        self._fc_ungranted.pop(failed_uid, None)
        if failed_uid in self._blocked_dests:
            self._flush_batch(failed_uid, force=True)

    def _note_blocked(self, dest_uid: int) -> None:
        if dest_uid in self._blocked_dests:
            return
        self._blocked_dests.add(dest_uid)
        telemetry = self.system.telemetry
        self._bp_spans[dest_uid] = telemetry.start_span(
            f"backpressure:{self.op_name}",
            kind="backpressure",
            src=self.uid,
            dest=dest_uid,
        )
        telemetry.increment("backpressure.blocks")
        telemetry.timeseries(f"credits:{self.op_name}").record(
            self.system.sim.now, self._credits.get(dest_uid, 0.0)
        )

    def _clear_blocked(self, dest_uid: int) -> None:
        if dest_uid not in self._blocked_dests:
            return
        self._blocked_dests.discard(dest_uid)
        span = self._bp_spans.pop(dest_uid, None)
        if span is not None:
            self.system.telemetry.end_span(
                span, credits=self._credits.get(dest_uid, 0.0)
            )

    # ------------------------------------------------------------- timers

    def start_timers(self) -> None:
        """Start the operator's periodic timer, aligned to absolute
        multiples of the interval so that a restored instance flushes its
        windows at the same instants the failed one would have."""
        interval = self.operator.timer_interval
        if interval is not None and self._timer_task is None:
            now = self.system.sim.now
            periods_elapsed = int(now / interval)
            next_boundary = (periods_elapsed + 1) * interval
            self._timer_task = self.system.sim.every(
                interval, self._queue_timer, start_after=next_boundary - now
            )

    def _queue_timer(self) -> None:
        if self.status is not InstanceStatus.RUNNING or not self.vm.alive:
            return
        self.vm.submit(self.operator.cost_per_tuple, self._run_timer)

    def _run_timer(self) -> None:
        if not self.alive:
            return
        ctx = OperatorContext(self.state, self._emit_from_ctx, now=self.system.sim.now)
        self.operator.on_timer(ctx)

    # -------------------------------------------------------- checkpointing

    def start_checkpointing(self) -> None:
        """Begin periodic ``checkpoint-state`` / ``backup-state`` cycles."""
        if self.is_source or self.is_sink:
            return  # sources and sinks are assumed reliable (§2.2)
        cfg = self.system.config.checkpoint
        if cfg.mode == CHECKPOINT_MODE_BARRIER:
            # Barrier mode has no per-instance daemon: cuts are driven by
            # the source-injected epoch barriers (system.deploy arms the
            # Checkpointer's injection timer).
            return
        if self._ckpt_task is not None:
            return
        start_after = cfg.interval
        if cfg.stagger:
            start_after *= 0.5 + ((self.uid * 7919) % 1000) / 2000.0
        self._ckpt_task = self.system.sim.every(
            cfg.interval, self.take_checkpoint, start_after=start_after
        )

    def stop_checkpointing(self) -> None:
        """Stop the periodic checkpoint daemon (pre-retirement)."""
        if self._ckpt_task is not None and not self._ckpt_task.stopped:
            self._ckpt_task.stop()
        self._ckpt_task = None

    def take_checkpoint(self) -> None:
        """checkpoint-state(o): serialise θ and β under the state lock.

        The serialisation occupies the CPU (front of queue — it locks the
        operator's data structures ahead of queued tuples), which is the
        latency overhead measured in §6.3.  With incremental
        checkpointing only the entries touched since the last checkpoint
        are serialised.
        """
        if self.status is not InstanceStatus.RUNNING or not self.vm.alive:
            return
        # Checkpoint barrier: pending batches carry tuples whose out_clock
        # the snapshot will cover, so they must be on the wire first.
        self.flush_batches()
        cfg = self.system.config.checkpoint
        incremental = cfg.incremental and self._can_increment
        if incremental and self.state.dirty is not None:
            entry_count = len(self.state.dirty)
        else:
            entry_count = len(self.state)
        work = cfg.serialize_base_seconds + entry_count * (
            cfg.serialize_seconds_per_entry
        )
        self.vm.submit(work, self._finish_checkpoint, incremental, front=True)

    def _finish_checkpoint(self, incremental: bool = False) -> None:
        if self.status is not InstanceStatus.RUNNING or not self.vm.alive:
            return
        checkpoint = self._build_checkpoint(incremental)
        cut = EpochCut(checkpoint, epoch=0, fence_epoch=self.epoch)
        # Tiered backends piggyback on the cut: the external tier
        # flushes it (a consistent, replayable cut) to durable storage.
        self.backend.on_checkpoint(cut)
        self.record_tier_metrics()
        self.system.checkpointer.cut(self, cut)

    def _build_checkpoint(self, incremental: bool) -> Checkpoint:
        """Materialise the cut itself — full CoW snapshot or dirty-key
        delta — shared by the phase daemon and barrier-epoch cuts."""
        self._ckpt_seq += 1
        buffers = {name: buf.snapshot() for name, buf in self.buffers.items()}
        if incremental and self._can_increment:
            touched = self.state.consume_dirty()
            delta_entries = {}
            deleted = set()
            missing = object()
            for key in touched:
                value = self.state.raw_get(key, missing)
                if value is missing:
                    deleted.add(key)
                else:
                    delta_entries[key] = _copy_state_value(value)
            return Checkpoint(
                op_name=self.op_name,
                slot_uid=self.uid,
                state=ProcessingState(
                    delta_entries,
                    positions=self.state.positions,
                    out_clock=self.state.out_clock,
                ),
                buffers=buffers,
                taken_at=self.system.sim.now,
                seq=self._ckpt_seq,
                incremental=True,
                base_seq=self._ckpt_seq - 1,
                deleted_keys=frozenset(deleted),
            )
        checkpoint = Checkpoint(
            op_name=self.op_name,
            slot_uid=self.uid,
            state=self.state.snapshot(),
            buffers=buffers,
            taken_at=self.system.sim.now,
            seq=self._ckpt_seq,
        )
        cfg = self.system.config.checkpoint
        if cfg.incremental or cfg.mode == CHECKPOINT_MODE_BARRIER:
            self.state.enable_dirty_tracking()
            self.state.consume_dirty()
            self._can_increment = True
        return checkpoint

    def force_full_checkpoint(self) -> None:
        """The next checkpoint must be full (delta base unavailable)."""
        self._can_increment = False

    def next_checkpoint_seq(self) -> int:
        """Claim the next checkpoint sequence number.

        Engine-driven snapshots (per-chunk commit backups of a fluid
        migration) share the counter with the periodic daemon, so the
        backup store's seq monotonicity holds across both producers.
        """
        self._ckpt_seq += 1
        return self._ckpt_seq

    # ------------------------------------------------- barrier snapshots

    def inject_barrier(self, epoch: int) -> None:
        """Source side: stamp epoch ``epoch`` into the output stream.

        Everything this source emitted before the call belongs to epoch
        ``epoch``; the barrier is forwarded to every live downstream
        instance as a control message that rides the same wires as data.
        """
        if not self.is_source or not self.alive or not self.vm.alive:
            return
        self.flush_batches()
        self._forward_barrier(epoch)

    def receive_barrier(self, epoch: int, origin_slot: int) -> None:
        """One upstream slot's epoch barrier arrived (barrier mode).

        Sinks absorb barriers (they hold no checkpointable state); a
        worker blocks the originating input — its post-barrier tuples
        park raw, pre-admission — until every live upstream slot has
        delivered its barrier, then cuts its state for the epoch with
        zero stop-the-world (the CoW snapshot runs as a front-of-queue
        work item, and queued pre-barrier tuples are above the cut's τ,
        covered by upstream replay + dedup exactly like today's cuts).
        """
        if not self.alive or not self.vm.alive or self.is_source or self.is_sink:
            return
        checkpointer = self.system.checkpointer
        if not checkpointer.epoch_inflight(epoch):
            return  # aborted/completed epoch; a late barrier must not park
        state = self._barrier_state.get(epoch)
        if state is None:
            state = _BarrierAlignment(
                self._upstream_slot_uids(), self.system.sim.now
            )
            self._barrier_state[epoch] = state
        if origin_slot in state.blocked:
            return  # duplicated barrier delivery
        state.blocked.add(origin_slot)
        state.awaited.discard(origin_slot)
        if state.awaited:
            return
        if len(state.blocked) > 1:
            self.system.telemetry.alignment_stall(
                self.op_name,
                self.uid,
                epoch,
                self.system.sim.now - state.started_at,
            )
        self._cut_epoch(epoch)

    def _upstream_slot_uids(self) -> set[int]:
        """Live upstream slots whose barriers this instance must align."""
        qm = self.system.query_manager
        uids: set[int] = set()
        for up_name in qm.upstream_of(self.op_name):
            for slot in qm.slots_of(up_name):
                if self.system.live_instance(slot.uid) is not None:
                    uids.add(slot.uid)
        return uids

    def _barrier_park(self, tup: Tuple) -> bool:
        """Park a fresh tuple whose sender is blocked under any epoch.

        Parking continues until the epoch's cut is finished (not merely
        aligned): releasing early would let fresh tuples overtake parked
        ones from the same edge, and the overtaker's watermark advance
        would make the parked tuples look like duplicates.  Replays are
        recovery traffic, not epoch-ordered — they never park.
        """
        if tup.replay:
            return False
        for state in self._barrier_state.values():
            if tup.slot in state.blocked:
                state.parked.append(("t", tup))
                return True
        return False

    def _cut_epoch(self, epoch: int) -> None:
        """All input barriers aligned: serialise this epoch's cut."""
        if self.status is not InstanceStatus.RUNNING or not self.vm.alive:
            self._release_epoch(epoch)
            return
        self.flush_batches()
        cfg = self.system.config.checkpoint
        incremental = self._can_increment
        if incremental and self.state.dirty is not None:
            entry_count = len(self.state.dirty)
        else:
            entry_count = len(self.state)
        work = cfg.serialize_base_seconds + entry_count * (
            cfg.serialize_seconds_per_entry
        )
        self.vm.submit(work, self._finish_epoch_cut, epoch, incremental, front=True)

    def _finish_epoch_cut(self, epoch: int, incremental: bool) -> None:
        if self.status is not InstanceStatus.RUNNING or not self.vm.alive:
            self._release_epoch(epoch)
            return
        if epoch not in self._barrier_state:
            return  # epoch aborted while the serialisation was queued
        checkpoint = self._build_checkpoint(incremental)
        cut = EpochCut(checkpoint, epoch=epoch, fence_epoch=self.epoch)
        self.backend.on_checkpoint(cut)
        self.record_tier_metrics()
        self.system.checkpointer.cut(self, cut)
        self._forward_barrier(epoch)
        self._release_epoch(epoch)

    def _forward_barrier(self, epoch: int) -> None:
        """Send the epoch barrier to every live downstream instance."""
        system = self.system
        qm = system.query_manager
        size = system.config.network.tuple_bytes
        for down_name in qm.downstream_of(self.op_name):
            for slot in qm.slots_of(down_name):
                dest = system.live_instance(slot.uid)
                if dest is None:
                    continue
                system.network.send(
                    self.vm,
                    dest.vm,
                    size,
                    dest.receive_barrier,
                    epoch,
                    self.uid,
                    kind="control",
                )

    def _release_epoch(self, epoch: int) -> None:
        """Drop one epoch's alignment state and re-deliver its parked
        input in arrival order (re-entry re-checks parking, so a tuple
        re-parks under a later in-flight epoch if its sender is blocked
        there too)."""
        state = self._barrier_state.pop(epoch, None)
        if state is None:
            return
        for kind, item in state.parked:
            if kind == "b":
                self.receive_batch(item)
            else:
                self.receive(item)

    def abort_barrier_alignment(self, epoch: int | None = None) -> None:
        """The Checkpointer aborted in-flight epochs (a slot died or an
        epoch went stale): unwind alignment and release parked tuples."""
        epochs = [epoch] if epoch is not None else sorted(self._barrier_state)
        for e in epochs:
            self._release_epoch(e)

    def start_age_trimming(self, horizon: float, period: float = 5.0) -> None:
        """Retain only ``horizon`` seconds of buffered tuples.

        Used by the upstream-backup and source-replay baselines, which
        have no checkpoints to trim against (§6.2).
        """
        if self._age_trim_task is not None:
            return
        self._age_trim_task = self.system.sim.every(
            period, self._trim_by_age, horizon
        )

    def _trim_by_age(self, horizon: float) -> None:
        if not self.alive:
            return
        cutoff = self.system.sim.now - horizon
        for buf in self.buffers.values():
            buf.trim_by_age(cutoff)

    def trim_buffer_to(self, dest_uid: int, ts: int) -> int:
        """trim(o, τ): drop buffered tuples for ``dest_uid`` up to ``ts``."""
        dropped = 0
        for buf in self.buffers.values():
            dropped += buf.trim(dest_uid, ts)
        return dropped

    # ------------------------------------------------------------- replays

    def replay_buffer_to(
        self,
        dest_uid: int,
        flag_replay: bool = False,
        after_positions: dict[int, int] | None = None,
        counts: dict[int, int] | None = None,
        ids: set | None = None,
    ) -> int:
        """replay-buffer-state(u, o): resend buffered tuples to ``dest_uid``.

        Returns the number of tuple messages sent.  Tuples keep their
        original (slot, ts) stamps, so receivers drop the ones already
        reflected in their restored state.  Flagged replays are *paced*:
        consecutive messages are ``replay_message_gap`` seconds apart (the
        replay channel's streaming capacity), so replays stretch over time
        and contend with live traffic at the receiver — the effect behind
        the §6.2 recovery-time comparisons.

        ``counts``, if given, accumulates sent tuples per origin slot
        stamp — the receiver tracks its drain per origin, so the engine
        can release one feeder's share if that feeder dies mid-drain.
        """
        sent = 0
        gap = self.system.config.fault.replay_message_gap
        # One replay channel per destination: replays toward different
        # partitions stream in parallel, which is where parallel recovery
        # gets its speedup (§4.2).
        delay = 0.0
        for buf in self.buffers.values():
            for tup in buf.tuples_for(dest_uid):
                if (
                    after_positions is not None
                    and tup.ts <= after_positions.get(tup.slot, -1)
                ):
                    # The receiver negotiated a replay offset: it already
                    # reflects this tuple (active-replication promotion).
                    continue
                if flag_replay:
                    if not tup.replay:
                        tup = tup.copy()
                        tup.replay = True
                    self.system.sim.schedule(delay, self._send, dest_uid, tup)
                    delay += gap
                else:
                    self._send(dest_uid, tup)
                if counts is not None:
                    counts[tup.slot] = counts.get(tup.slot, 0) + 1
                if ids is not None:
                    ids.add((tup.slot, tup.ts))
                sent += 1
        return sent

    def replay_all_buffers(self, flag_replay: bool = False) -> int:
        """Resend every buffered tuple (restored operator → downstreams).

        Each tuple is re-routed by the *current* routing state, not the
        bucket it was checkpointed under: a routing swap committed after
        the checkpoint was taken (a fluid chunk commit or a hot-key
        carve-out) moved keys to a new owner.  The stale edge's instance
        would drop the tuple as migrated — while the new owner, if it
        released a dead feeder's mid-drain replays, is waiting for
        exactly these (slot, ts) pairs as gap fills.
        """
        sent = 0
        gap = self.system.config.fault.replay_message_gap
        # One replay channel per destination (see replay_buffer_to).
        delays: dict[int, float] = {}
        for down_name, buf in self.buffers.items():
            routing = self.routing.get(down_name)
            for dest_uid in buf.destinations():
                for tup in buf.tuples_for(dest_uid):
                    target = dest_uid
                    if routing is not None:
                        owner = routing.route_key(tup.key)
                        if owner is not None:
                            target = owner
                    if flag_replay:
                        if not tup.replay:
                            tup = tup.copy()
                            tup.replay = True
                        delay = delays.get(target, 0.0)
                        self.system.sim.schedule(delay, self._send, target, tup)
                        delays[target] = delay + gap
                    else:
                        self._send(target, tup)
                    sent += 1
        return sent

    def expect_replays(
        self,
        count: int,
        on_complete: Callable[[], None],
        flagged_only: bool = False,
        by_slot: dict[int, int] | None = None,
        drain_intervals: list | None = None,
        expected_ids: set | None = None,
    ) -> None:
        """Arrange ``on_complete`` to fire once ``count`` replayed tuples
        have been received *and processed* (the recovery-time endpoint).

        With ``flagged_only`` only tuples carrying the replay flag count —
        used by strategies that replay while new tuples keep flowing.
        ``by_slot`` breaks ``count`` down per origin slot stamp, enabling
        :meth:`release_replays_from` when a feeder dies mid-drain.
        ``drain_intervals`` marks a fluid-migration chunk drain: replays
        for keys inside those intervals dedup against the chunk's τ floor
        alone, while keys outside also dedup against a watermark snapshot
        taken now (see :meth:`_admit`).
        """
        if self._replay_done is not None:
            raise RuntimeStateError(f"{self.slot!r} already awaiting replays")
        if count <= 0:
            on_complete()
            return
        self._replay_expected = count
        self._replay_done = on_complete
        self._replay_flagged_only = flagged_only
        self._replay_seen = set()
        self._replay_by_slot = dict(by_slot) if by_slot else None
        self._replay_ids = set(expected_ids) if expected_ids is not None else None
        if drain_intervals:
            self._drain_intervals = list(drain_intervals)
            self._drain_wm_start = dict(self._arrival_wm)
            self._drain_replay_wm = {}

    def _note_replay_progress(self, tup: Tuple | None = None) -> None:
        if self._replay_done is None:
            return
        if (
            self._replay_flagged_only
            and (tup is None or not tup.replay)
        ):
            return
        if tup is not None and self._replay_ids is not None:
            key = (tup.slot, tup.ts)
            if key not in self._replay_ids:
                return  # stray duplicate from an earlier replay wave
            self._replay_ids.discard(key)
        elif tup is not None and self._replay_seen is not None:
            key = (tup.slot, tup.ts)
            if key in self._replay_seen:
                return  # duplicated delivery of an already-counted replay
            self._replay_seen.add(key)
        if (
            tup is not None
            and self._replay_by_slot is not None
            and tup.slot in self._replay_by_slot
        ):
            self._replay_by_slot[tup.slot] -= 1
            if self._replay_by_slot[tup.slot] <= 0:
                del self._replay_by_slot[tup.slot]
        self._replay_expected -= 1
        if self._replay_expected <= 0:
            self._complete_drain()

    def release_replays_from(self, slot_uid: int) -> int:
        """Give up on outstanding replays stamped with ``slot_uid``.

        Called by the engine when the feeder that sent them died
        mid-drain: its undelivered replays will never arrive, so waiting
        for them would wedge the operation forever.  The arrival
        watermark for that origin is rewound to the last *processed*
        replay so that when the feeder itself recovers, its restored
        buffer re-sends fill the gap instead of being dropped as
        duplicates; parked fresh tuples from that origin are discarded
        for the same reason (the feeder's recovery re-derives them).

        Returns the number of expected replays released.
        """
        if self._replay_done is None or self._replay_by_slot is None:
            return 0
        remaining = self._replay_by_slot.pop(slot_uid, 0)
        if remaining <= 0:
            return 0
        if self._replay_ids is not None:
            # Exact membership known: remember precisely the undelivered
            # pairs, so the feeder's re-derivations fill the gap while
            # every other at-or-below-watermark arrival stays a duplicate.
            released = {k for k in self._replay_ids if k[0] == slot_uid}
            self._replay_gap_ids |= released
            self._replay_ids -= released
            # The undelivered suffix of a paced wave spans both sides of
            # the chunk floor; keep the drain's dedup context so each
            # gap fill can be judged exactly as its replay would have.
            self._gap_intervals = list(self._drain_intervals)
            self._gap_floor = dict(self._replay_dedup_floor)
            self._gap_wm_start = dict(self._drain_wm_start)
        elif self.replay_mode == REPLAY_DEDUP:
            floor = self._replay_dedup_floor.get(slot_uid, -1)
            if self._arrival_wm.get(slot_uid, -1) > floor:
                self._arrival_wm[slot_uid] = floor
        self._held_while_draining = [
            t for t in self._held_while_draining if t.slot != slot_uid
        ]
        self._replay_expected -= remaining
        if self._replay_expected <= 0:
            self._complete_drain()
        return remaining

    def _complete_drain(self) -> None:
        done = self._replay_done
        self._replay_done = None
        self._replay_seen = None
        self._replay_by_slot = None
        self._replay_ids = None
        self._drain_intervals = []
        self._drain_wm_start = {}
        self._drain_replay_wm = {}
        held, self._held_while_draining = self._held_while_draining, []
        # All replays are at least queued; a zero-cost marker item fires
        # after the last queued replay has been processed.
        if done is not None:
            if self.vm.alive:
                self.vm.submit(0.0, done)
            else:
                done()
        # Tuples parked during the drain re-enter in arrival order; their
        # work items queue behind the already-queued replays.
        for tup in held:
            self.receive(tup)

    # --------------------------------------------------- fluid migration

    def begin_parking(self, intervals: list) -> None:
        """Source side: a chunk covering ``intervals`` is about to be
        extracted; fresh tuples for those keys park until its commit."""
        self._parking_intervals = list(intervals)

    def commit_parked(self) -> float:
        """Source side: the in-flight chunk committed.

        Its intervals join the migrated set (straggler tuples for them
        are dropped from now on) and the parked tuples are discarded:
        every one of them sits in an upstream output buffer, and the
        post-swap replay delivers it to the chunk's new owner.  Returns
        the parked weight discarded.
        """
        discarded = sum(tup.weight for tup in self._parked)
        if self._flow is not None and self._parked:
            # Parked rows were admitted (and debited upstream); their
            # discard is their final disposal here.
            for tup in self._parked:
                self._fc_note(tup.slot, tup.weight)
            self._fc_maybe_grant()
        self._migrated_intervals.extend(self._parking_intervals)
        self._parking_intervals = []
        self._parked = []
        return discarded

    def abort_parking(self) -> list[Tuple]:
        """Source side: the migration aborted with a chunk in flight.

        Parking stops — committed intervals stay migrated, because their
        routing swaps are kept — and the parked tuples are returned in
        per-origin timestamp order for re-injection via :meth:`reinject`.
        """
        parked = sorted(self._parked, key=lambda tup: (tup.slot, tup.ts))
        self._parked = []
        self._parking_intervals = []
        return parked

    def reinject(self, tup: Tuple) -> None:
        """Queue a previously parked tuple, bypassing admission.

        The tuple was admitted (watermark-advanced) when it parked, so
        running it through :meth:`_admit` again would drop it as a
        duplicate of itself.
        """
        if not self.alive or not self.vm.alive:
            return
        self._backlog_weight += tup.weight
        self.vm.submit(tup.weight * self.operator.cost_per_tuple, self._process, tup)

    def reabsorb_state(self, state: ProcessingState) -> None:
        """Source side, abort path: put an extracted-but-uncommitted
        chunk's entries back.  The value objects may still be aliased by
        the frozen pre-migration checkpoint, so they are adopted shared
        (copy-on-write on the next mutation), not claimed."""
        for key, value in state.share_all().items():
            self.state.adopt(key, value)

    def absorb_chunk(self, checkpoint: Checkpoint) -> None:
        """Target side: merge one chunk of a fluid migration into live
        state.

        τ max-merges — this instance's positions for shared origins may
        already be ahead of the source's.  The replay dedup floor resets
        to the *chunk's* τ: the commit drain that follows dedups
        in-flight-chunk keys against it, while keys from earlier chunks
        are guarded by the drain's watermark snapshot (:meth:`_admit`).
        The output clock is left alone; this instance emits under its own
        slot uid, so its clock never collides with the source's.  Output
        buffers riding the chunk (the final chunk carries the retiring
        source's β) are adopted: the source's unacknowledged emissions
        must stay replayable after it is gone.
        """
        # Adopt — don't claim — the chunk's value objects: they are still
        # aliased by the frozen pre-migration checkpoint the chunk was
        # extracted from (snapshot -> extract -> ship moves the objects
        # without copying).  A plain write would mark them privately
        # owned and the next in-place mutation here would corrupt the
        # rollback backups cut from that frozen checkpoint.
        for key, value in checkpoint.state.share_all().items():
            self.state.adopt(key, value)
        for slot_uid, pos in checkpoint.positions.items():
            if pos > self.state.positions.get(slot_uid, -1):
                self.state.positions[slot_uid] = pos
        self._replay_dedup_floor = dict(checkpoint.positions)
        for name, buf in checkpoint.buffers.items():
            mine = self.buffers.get(name)
            if mine is None:
                continue
            for dest in buf.destinations():
                for tup in buf.tuples_for(dest):
                    mine.append(dest, tup)

    # ------------------------------------------------------ control plane

    def pause(self) -> None:
        """stop-operator: stop processing; inputs keep queueing."""
        if self.status is InstanceStatus.RUNNING:
            self.flush_batches()
            self.status = InstanceStatus.PAUSED
            self.vm.pause()

    def resume(self) -> None:
        """start-operator: resume processing."""
        if self.status is InstanceStatus.PAUSED:
            self.status = InstanceStatus.RUNNING
            self.vm.resume()

    def freeze_positions(self) -> dict[int, int]:
        """Pause and report current processed positions (τ_stop).

        Called on a bottleneck operator when scale out begins: the new
        partitions suppress re-emission of outputs for inputs at or below
        these positions, because this instance already emitted them.
        """
        self.pause()
        return dict(self.state.positions)

    def stop(self, release_vm: bool = True) -> None:
        """Graceful removal after scale out replaced this instance."""
        if self.status in (InstanceStatus.STOPPED, InstanceStatus.FAILED):
            return
        if self.vm.alive:
            self.flush_batches()
        else:
            self._discard_batches()
        # Parked barrier-mode tuples sit in upstream buffers too; the
        # successor (if any) receives them via replay, not from here.
        self._barrier_state.clear()
        self.status = InstanceStatus.STOPPED
        self._stop_tasks()
        if release_vm and self.vm.alive:
            self.vm.release()
        if not self.vm.alive:
            # A retired VM's edges carry no further traffic; drop their
            # in-order release clocks so long runs don't leak them.
            self.system.network.prune_edges(self.vm.vm_id)

    def on_fence_notice(self, current_epoch: int) -> None:
        """A fence notice arrived: this instance's slot was re-epoched.

        A falsely-declared-dead primary keeps running — its VM never
        failed — until this notice reaches it (from the successor's VM
        at install time, or from the detector answering one of its
        stale-epoch heartbeats).  Everything it emitted since the fence
        was rejected by epoch checks, so it can simply terminate: its
        successor owns the slot's timeline.  Releasing the VM keeps the
        cluster accounting honest (no leaked zombie VMs).
        """
        if current_epoch <= self.epoch or not self.alive:
            return
        self.system.telemetry.event(
            "zombie_fenced",
            repr(self.slot),
            slot=self.uid,
            epoch=self.epoch,
            current_epoch=current_epoch,
        )
        self.system.metrics.increment("zombies_fenced")
        # This VM may hold *other* slots' backups (it is upstream of
        # them); re-home those before the VM goes away, exactly as a
        # graceful retirement would.
        self.system.retire_backup_store(self.vm)
        self.stop(release_vm=True)

    def _on_vm_failed(self, _vm: VirtualMachine) -> None:
        if self.status in (InstanceStatus.STOPPED, InstanceStatus.FAILED):
            return
        self.status = InstanceStatus.FAILED
        self._discard_batches()
        self._barrier_state.clear()
        self._stop_tasks()
        self.system.notify_instance_failed(self)

    def _stop_tasks(self) -> None:
        for task in (self._ckpt_task, self._timer_task, self._age_trim_task):
            if task is not None and not task.stopped:
                task.stop()
        self._ckpt_task = None
        self._timer_task = None
        self._age_trim_task = None

    # -------------------------------------------------------------- restore

    def restore_from(
        self,
        checkpoint: Checkpoint,
        suppress_until: dict[int, int] | None = None,
        fresh_dedup: bool = False,
    ) -> None:
        """restore-state(o, θ, τ, β, ρ): initialise from a checkpoint.

        ``suppress_until`` carries τ_stop from a frozen predecessor (see
        :meth:`freeze_positions`).  ``fresh_dedup`` clears the duplicate
        filter for baseline strategies that rebuild state by re-processing
        (upstream backup / source replay).
        """
        self.system.telemetry.log.emit(
            "restore",
            time=self.system.sim.now,
            slot=self.uid,
            op=self.op_name,
            seq=checkpoint.seq,
            entries=len(checkpoint.state),
            vm=self.vm.vm_id,
            fresh_dedup=fresh_dedup,
        )
        self.state = self.backend.restore(checkpoint.state)
        self._replay_dedup_floor = dict(checkpoint.positions)
        self._ckpt_seq = checkpoint.seq
        for name, buf in checkpoint.buffers.items():
            if name in self.buffers:
                self.buffers[name] = buf.snapshot()
        self._arrival_wm = {} if fresh_dedup else dict(checkpoint.positions)
        self._replay_gap_ids = set()
        self._suppress_until = dict(suppress_until) if suppress_until else {}

    def set_suppression(self, suppress_until: dict[int, int] | None) -> None:
        """Install the τ_stop bound from a predecessor frozen at commit
        time (see the scale-out coordinator)."""
        self._suppress_until = dict(suppress_until) if suppress_until else {}

    # -------------------------------------------------------------- routing

    def set_routing(self, down_name: str, routing: RoutingState) -> None:
        """Install the routing mirror toward one downstream operator."""
        if self._batch_pending:
            # Pending batches were routed under the old state; send them
            # before the new routing takes effect.
            self.flush_batches()
        self.routing[down_name] = routing

    def repartition_buffer(self, down_name: str) -> None:
        """partition-buffer-state(u): re-bucket buffered tuples for
        ``down_name`` according to the current routing state."""
        routing = self.routing.get(down_name)
        buf = self.buffers.get(down_name)
        if routing is None or buf is None:
            return
        buf.repartition(lambda tup: routing.route_key(tup.key))

    # -------------------------------------------------------------- metrics

    def _charge_state_io(self, seconds: float) -> None:
        """Charge tiered-state disk/external I/O as CPU-busy VM time.

        Spills, fault-ins, cold checkpoint reads and external flushes all
        route through here; the time lands on the hosting VM's work queue
        (occupying the CPU like any serialisation work) and is summed in
        the per-operator ``state_io`` time series.  A dead or released VM
        absorbs nothing — the state object may be charged while being
        drained post-failure, and those reads are free by then.
        """
        if seconds <= 0:
            return
        self.system.metrics.increment(f"state_io:{self.op_name}", seconds)
        self.system.telemetry.latency(f"state_io_latency:{self.op_name}").record(
            self.system.sim.now, seconds
        )
        if self.vm.alive:
            self.vm.submit(seconds, lambda: None)

    def record_tier_metrics(self) -> None:
        """Publish per-tier entry counts and I/O counters (telemetry)."""
        self.system.telemetry.state_tiers(
            self.op_name, self.uid, self.backend.tier_stats(self.state)
        )

    def backlog(self) -> float:
        """Weighted tuples received but not yet processed."""
        return self._backlog_weight
