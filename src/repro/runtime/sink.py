"""Sinks: operators that collect query results.

Sinks record end-to-end tuple latency (the paper's headline performance
metric) and hand results to pluggable collectors.  The collectors are
deliberately idempotent where the query semantics allow it: a recovered
operator may re-emit results it already produced, and idempotent
collection is what makes "recovery does not affect query results"
testable at the sink.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.operator import Operator, OperatorContext
from repro.core.operators import merge_topk
from repro.core.tuples import Tuple


class SinkOperator(Operator):
    """A query sink; forwards every received tuple to a collector."""

    def __init__(
        self,
        name: str,
        collector: Callable[[Tuple, float], None] | None = None,
        cost_per_tuple: float = 1.6e-6,
        **kwargs,
    ):
        kwargs.setdefault("stateful", False)
        kwargs.setdefault("measure_latency", True)
        super().__init__(name, cost_per_tuple=cost_per_tuple, **kwargs)
        self._collector = collector

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        if self._collector is not None:
            self._collector(tup, ctx.now)

    def process_block(self, block, ctx: OperatorContext) -> bool:
        collector = self._collector
        if collector is not None:
            now = ctx.now
            row = block.row
            for i in range(len(block)):
                collector(row(i), now)
        return True


class WindowedResultCollector:
    """Collects ``(key, (window_index, value))`` results idempotently.

    Duplicate emissions of the same window (after recovery) carry
    identical deterministic values, so last-write-wins storage makes
    collection exactly-once at the result level.
    """

    def __init__(self) -> None:
        self.results: dict[tuple[Any, int], Any] = {}
        self.received = 0

    def __call__(self, tup: Tuple, _now: float) -> None:
        window_index, value = tup.payload
        self.results[(tup.key, window_index)] = value
        self.received += 1

    def value(self, key: Any, window_index: int) -> Any:
        """The collected value for one (key, window) cell."""
        return self.results.get((key, window_index))

    def windows(self) -> set[int]:
        """All window indices with collected results."""
        return {window for _key, window in self.results}

    def counts_for_window(self, window_index: int) -> dict[Any, Any]:
        """key → value mapping for one window."""
        return {
            key: value
            for (key, window), value in self.results.items()
            if window == window_index
        }


class TopKResultCollector:
    """Aggregates partial top-k rankings from partitioned reducers (§6.1).

    Each reducer partition periodically emits its partial ranking; the
    sink keeps the most recent partial per origin slot and merges them
    into the final answer on demand.
    """

    def __init__(self, k: int = 10) -> None:
        self.k = k
        self._partials: dict[int, tuple] = {}
        self.emissions = 0

    def __call__(self, tup: Tuple, _now: float) -> None:
        self._partials[tup.slot] = tup.payload
        self.emissions += 1

    def ranking(self) -> list[tuple[Any, int]]:
        """The merged top-k ranking across partition partials."""
        return merge_topk(list(self._partials.values()), self.k)


class RecordingCollector:
    """Keeps every received tuple — small tests and examples only."""

    def __init__(self) -> None:
        self.tuples: list[Tuple] = []

    def __call__(self, tup: Tuple, _now: float) -> None:
        self.tuples.append(tup)

    def __len__(self) -> int:
        return len(self.tuples)
