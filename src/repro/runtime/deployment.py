"""Deployment manager (§5, Fig. 4).

Maps the execution graph onto VMs, builds operator instances, wires
routing-state mirrors into upstream dispatchers, configures per-strategy
services (checkpoint daemons, buffer retention, timers) and attaches
workload generators to sources.  Initial deployment provisions VMs with
no delay (the paper deploys before the run starts); every *runtime* VM
request goes through the VM pool instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import (
    STRATEGY_ACTIVE_REPLICATION,
    STRATEGY_NONE,
    STRATEGY_RSM,
    STRATEGY_SOURCE_REPLAY,
    STRATEGY_UPSTREAM_BACKUP,
)
from repro.core.execution import Slot
from repro.core.query import QueryGraph
from repro.errors import DeploymentError
from repro.runtime.instance import OperatorInstance
from repro.runtime.source import SourceController, WorkloadGenerator
from repro.sim.vm import VirtualMachine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.system import StreamProcessingSystem


class DeploymentManager:
    """Creates and wires operator instances for a system."""

    def __init__(self, system: "StreamProcessingSystem") -> None:
        self.system = system

    # ------------------------------------------------------------- initial

    def deploy_query(
        self,
        query: QueryGraph,
        parallelism: dict[str, int] | None = None,
        generators: dict[str, WorkloadGenerator] | None = None,
    ) -> None:
        """Deploy ``query`` and start all services."""
        system = self.system
        system.query_manager.register_query(query, parallelism)
        generators = generators or {}
        for name in query.sources:
            if name not in generators:
                raise DeploymentError(f"source {name} has no workload generator")
            system.source_controllers[name] = SourceController()

        # One VM per slot: workers are "small" instances, sources and
        # sinks run on the larger instance type (§6).
        for op_name in query.topological_order():
            for slot in system.query_manager.slots_of(op_name):
                vm = self._provision_initial_vm(op_name)
                self.build_instance(slot, vm)

        for instance in list(system.instances.values()):
            self.wire_routing(instance)
            self.configure_services(instance)

        for name, generator in generators.items():
            instances = system.instances_of(name)
            generator.attach(system, instances)

        system.record_vm_count()

    def _provision_initial_vm(self, op_name: str) -> VirtualMachine:
        system = self.system
        cloud = system.config.cloud
        if system.query_manager.is_source(op_name) or system.query_manager.is_sink(
            op_name
        ):
            capacity = cloud.source_sink_capacity
        else:
            capacity = cloud.worker_capacity
        return system.provider.provision_immediately(capacity)

    # ---------------------------------------------------------- components

    def build_instance(self, slot: Slot, vm: VirtualMachine) -> OperatorInstance:
        """Create, register and minimally wire one operator instance.

        Routing mirrors and services are attached separately so that the
        scale-out coordinator can restore state in between.
        """
        system = self.system
        query = system.query_manager.query
        assert query is not None
        op = query.operator(slot.op_name)
        downstream = query.downstream_of(slot.op_name)
        instance = OperatorInstance(
            system,
            op,
            slot,
            vm,
            downstream_names=downstream,
            is_source=query.is_source(slot.op_name),
            is_sink=query.is_sink(slot.op_name),
            buffered_downstreams=self._buffered_downstreams(slot.op_name, downstream),
        )
        system.instances[slot.uid] = instance
        return instance

    def _buffered_downstreams(self, op_name: str, downstream: list[str]) -> set[str]:
        system = self.system
        strategy = system.config.fault.strategy
        non_sink = {d for d in downstream if not system.query_manager.is_sink(d)}
        if strategy in (
            STRATEGY_RSM,
            STRATEGY_UPSTREAM_BACKUP,
            STRATEGY_ACTIVE_REPLICATION,
        ):
            return non_sink
        if strategy == STRATEGY_SOURCE_REPLAY:
            return non_sink if system.query_manager.is_source(op_name) else set()
        if strategy == STRATEGY_NONE:
            return set()
        return non_sink

    def wire_routing(self, instance: OperatorInstance) -> None:
        """Mirror the authoritative routing state into the dispatcher."""
        for down_name in self.system.query_manager.downstream_of(instance.op_name):
            instance.set_routing(
                down_name, self.system.query_manager.routing_to(down_name)
            )

    def configure_services(self, instance: OperatorInstance) -> None:
        """Start checkpointing / retention / timers as the strategy needs."""
        system = self.system
        fault = system.config.fault
        instance.start_timers()
        if system.phi_detector is not None:
            # Every instance — initial or replacement — starts its
            # heartbeat stream here (no-op for sources/sinks/replicas).
            system.phi_detector.watch(instance)
        if instance.is_source or instance.is_sink:
            if fault.strategy == STRATEGY_SOURCE_REPLAY and instance.is_source:
                instance.start_age_trimming(fault.buffer_horizon)
            return
        if fault.strategy == STRATEGY_RSM:
            instance.start_checkpointing()
        elif fault.strategy in (
            STRATEGY_UPSTREAM_BACKUP,
            STRATEGY_ACTIVE_REPLICATION,
        ):
            instance.start_age_trimming(fault.buffer_horizon)

    # ------------------------------------------------------------- runtime

    def deploy_replacement(
        self, slot: Slot, vm: VirtualMachine
    ) -> OperatorInstance:
        """Build a replacement/partition instance on a runtime-acquired VM."""
        instance = self.build_instance(slot, vm)
        self.wire_routing(instance)
        return instance
