"""Runtime: operator instances, deployment, sources/sinks, SPS facade."""

from repro.runtime.deployment import DeploymentManager
from repro.runtime.instance import InstanceStatus, OperatorInstance
from repro.runtime.query_manager import QueryManager
from repro.runtime.sink import (
    RecordingCollector,
    SinkOperator,
    TopKResultCollector,
    WindowedResultCollector,
)
from repro.runtime.source import SourceController, SourceOperator, WorkloadGenerator
from repro.runtime.system import StreamProcessingSystem

__all__ = [
    "DeploymentManager",
    "InstanceStatus",
    "OperatorInstance",
    "QueryManager",
    "RecordingCollector",
    "SinkOperator",
    "SourceController",
    "SourceOperator",
    "StreamProcessingSystem",
    "TopKResultCollector",
    "WindowedResultCollector",
    "WorkloadGenerator",
]
