"""Statistical helpers for repeated experiment runs.

The paper reports recovery times "averaged over 10 runs"; these helpers
make that rigorous for any experiment in this repository: run a seeded
measurement several times, summarise it with a confidence interval, and
test whether two strategies differ significantly (Welch's t-test via
scipy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats

from repro.errors import ReproError


@dataclass(frozen=True)
class Summary:
    """Mean, spread and a confidence interval for one measurement."""

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.3f} ± {(self.ci_high - self.ci_low) / 2:.3f} "
            f"({self.confidence:.0%} CI, n={self.n})"
        )


def summarize(samples: Sequence[float], confidence: float = 0.95) -> Summary:
    """Mean with a Student-t confidence interval.

    With a single sample the interval degenerates to the point estimate.
    """
    if not samples:
        raise ReproError("cannot summarise zero samples")
    if not 0 < confidence < 1:
        raise ReproError(f"confidence must be in (0, 1): {confidence}")
    values = np.asarray(samples, dtype=float)
    mean = float(values.mean())
    if values.size == 1:
        return Summary(1, mean, 0.0, mean, mean, confidence)
    std = float(values.std(ddof=1))
    sem = std / np.sqrt(values.size)
    half = float(stats.t.ppf((1 + confidence) / 2, values.size - 1) * sem)
    return Summary(values.size, mean, std, mean - half, mean + half, confidence)


def repeat(measure: Callable[[int], float], repeats: int, seed: int = 0) -> list[float]:
    """Run a seeded measurement ``repeats`` times with distinct seeds."""
    if repeats < 1:
        raise ReproError(f"repeats must be >= 1: {repeats}")
    return [float(measure(seed + i)) for i in range(repeats)]


@dataclass(frozen=True)
class Comparison:
    """Welch's t-test between two measurement sets."""

    mean_a: float
    mean_b: float
    t_statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        """Whether the difference is significant at level ``alpha``."""
        return self.p_value < alpha


def compare(a: Sequence[float], b: Sequence[float]) -> Comparison:
    """Welch's t-test: do the two samples have different means?

    Used to back claims like "R+SM recovers significantly faster than
    upstream backup" with more than a point estimate.
    """
    if len(a) < 2 or len(b) < 2:
        raise ReproError("need at least two samples per side to compare")
    result = stats.ttest_ind(np.asarray(a), np.asarray(b), equal_var=False)
    return Comparison(
        float(np.mean(a)),
        float(np.mean(b)),
        float(result.statistic),
        float(result.pvalue),
    )
