"""Experiment harness: per-figure drivers and result rendering."""

from repro.experiments.figures import (
    ablation_active_replication,
    ablation_incremental_checkpoints,
    ablation_vm_pool,
    fig06_lrb_scaleout,
    fig07_lrb_latency,
    fig08_openloop,
    fig09_threshold,
    fig10_manual_vs_dynamic,
    fig11_recovery_strategies,
    fig12_checkpoint_interval,
    fig13_parallel_recovery,
    fig14_state_size,
    fig15_tradeoff,
    lrating_probe,
)
from repro.experiments.harness import (
    FigureResult,
    WordCountRun,
    measure_recovery_time,
    pad_counter_state,
    run_word_count,
)
from repro.experiments.report import render_series, render_table, sparkline
from repro.experiments.stats import Comparison, Summary, compare, repeat, summarize
from repro.experiments.runners import (
    LRBRun,
    ScaleOutRun,
    WikipediaRun,
    run_lrb,
    run_wikipedia_openloop,
)

__all__ = [
    "FigureResult",
    "LRBRun",
    "ScaleOutRun",
    "WikipediaRun",
    "WordCountRun",
    "Comparison",
    "Summary",
    "ablation_active_replication",
    "ablation_incremental_checkpoints",
    "ablation_vm_pool",
    "fig06_lrb_scaleout",
    "fig07_lrb_latency",
    "fig08_openloop",
    "fig09_threshold",
    "fig10_manual_vs_dynamic",
    "fig11_recovery_strategies",
    "fig12_checkpoint_interval",
    "fig13_parallel_recovery",
    "fig14_state_size",
    "fig15_tradeoff",
    "lrating_probe",
    "measure_recovery_time",
    "pad_counter_state",
    "render_series",
    "render_table",
    "run_lrb",
    "run_wikipedia_openloop",
    "compare",
    "repeat",
    "run_word_count",
    "summarize",
    "sparkline",
]
