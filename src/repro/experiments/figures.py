"""Drivers that regenerate every figure of the paper's evaluation (§6).

Each ``figNN_*`` function runs the corresponding experiment and returns a
:class:`~repro.experiments.harness.FigureResult` holding the same rows or
series the paper's figure reports.  Figures 6 and 7 come from the same
closed-loop LRB run, which is cached per parameter set.

Scale notes: the drivers default to the paper's parameters; pass smaller
values for quick runs (the benchmark files expose both).
"""

from __future__ import annotations

import functools
import math

from repro.config import (
    STRATEGY_NONE,
    STRATEGY_RSM,
    STRATEGY_SOURCE_REPLAY,
    STRATEGY_UPSTREAM_BACKUP,
)
from repro.experiments.harness import (
    FigureResult,
    measure_recovery_time,
    run_word_count,
)
from repro.experiments.runners import LRBRun, run_lrb, run_wikipedia_openloop
from repro.workloads.lrb import manual_parallelism
from repro.workloads.text import (
    STATE_SIZE_LARGE,
    STATE_SIZE_MEDIUM,
    STATE_SIZE_SMALL,
)

#: Checkpoint intervals swept in Figs. 12, 13 and 15 (paper x-axis).
CHECKPOINT_INTERVALS = (1.0, 5.0, 10.0, 15.0, 20.0, 25.0, 30.0)
#: Input rates used by the §6.2/6.3 word-count experiments.
WORDCOUNT_RATES = (100.0, 500.0, 1000.0)


# --------------------------------------------------------------------------
# Figures 6 & 7 — closed-loop LRB scale out
# --------------------------------------------------------------------------


@functools.lru_cache(maxsize=8)
def _lrb_closed_loop(
    num_xways: int, duration: float, quantum: float, seed: int
) -> LRBRun:
    return run_lrb(
        num_xways=num_xways, duration=duration, quantum=quantum, seed=seed
    )


def fig06_lrb_scaleout(
    num_xways: int = 350,
    duration: float = 2000.0,
    quantum: float = 2.0,
    seed: int = 0,
) -> FigureResult:
    """Fig. 6: input rate, result throughput and #VMs over time (L=350)."""
    run = _lrb_closed_loop(num_xways, duration, quantum, seed)
    in_t, in_r = run.input_rate_series()
    out_t, out_r = run.processed_series("sink")
    vm_t, vm_v = run.vm_series()
    rows = [
        ["peak input rate (tuples/s)", run.peak_input_rate()],
        ["peak result throughput (tuples/s)", run.peak_throughput("sink")],
        ["final worker VMs", run.final_worker_vms()],
        ["scale-out operations", len(run.scale_out_times())],
        ["input sustained at end", run.sustained()],
    ]
    parallelism = {
        name: run.system.query_manager.parallelism_of(name)
        for name in run.system.query_manager.query.operators  # type: ignore[union-attr]
    }
    return FigureResult(
        "Fig. 6",
        f"Dynamic scale out for the LRB workload, L={num_xways} (closed loop)",
        ["metric", "value"],
        rows,
        series={
            "input rate": (in_t, in_r),
            "throughput": (out_t, out_r),
            "worker VMs": (vm_t, vm_v),
        },
        notes=[f"final parallelism: {parallelism}"],
        params={"L": num_xways, "duration": duration, "quantum": quantum},
    )


def fig07_lrb_latency(
    num_xways: int = 350,
    duration: float = 2000.0,
    quantum: float = 2.0,
    seed: int = 0,
) -> FigureResult:
    """Fig. 7: processing latency over time for the Fig. 6 run."""
    run = _lrb_closed_loop(num_xways, duration, quantum, seed)
    lat_t, lat_v = run.latency_over_time(bin_width=duration / 50, q=95.0)
    rows = [
        ["median latency (ms)", run.latency_percentile(50) * 1e3],
        ["95th percentile (ms)", run.latency_percentile(95) * 1e3],
        ["99th percentile (ms)", run.latency_percentile(99) * 1e3],
        ["max latency (s)", run.system.metrics.latencies["latency:sink"].max()],
        ["within LRB 5 s target", run.latency_percentile(99) < 5.0],
        ["scale-out events", len(run.scale_out_times())],
    ]
    return FigureResult(
        "Fig. 7",
        f"Processing latency for LRB workload, L={num_xways}",
        ["metric", "value"],
        rows,
        series={"p95 latency (s)": (lat_t, lat_v)},
        notes=[
            "latency peaks follow scale-out events (stream buffering and replay)",
            f"scale-out times (s): {[round(t) for t in run.scale_out_times()]}",
        ],
        params={"L": num_xways, "duration": duration},
    )


# --------------------------------------------------------------------------
# Figure 8 — open-loop map/reduce scale out
# --------------------------------------------------------------------------


def fig08_openloop(
    rate: float = 550_000.0,
    duration: float = 600.0,
    sources: int = 18,
    seed: int = 0,
) -> FigureResult:
    """Fig. 8: scale out of an initially under-provisioned top-k query."""
    run = run_wikipedia_openloop(
        rate=rate, duration=duration, sources=sources, seed=seed
    )
    consumed_t, consumed_r = run.consumed_series()
    vm_t, vm_v = run.vm_series()
    sustain_at = run.time_to_sustain()
    map_pi = run.system.query_manager.parallelism_of(run.query.map_name)
    reduce_pi = run.system.query_manager.parallelism_of(run.query.reduce_name)
    rows = [
        ["target input rate (tuples/s)", rate],
        ["peak consumed rate (tuples/s)", run.peak_throughput(run.query.map_name)],
        ["time to sustain input (s)", sustain_at],
        ["tuples dropped during overload", run.dropped_weight()],
        ["final map parallelism", map_pi],
        ["final reduce parallelism", reduce_pi],
        ["final worker VMs", run.final_worker_vms()],
        ["top-k ranking size", len(run.query.collector.ranking())],
    ]
    return FigureResult(
        "Fig. 8",
        "Dynamic scale out for a map/reduce-style workload (open loop)",
        ["metric", "value"],
        rows,
        series={
            "consumed tuples/s": (consumed_t, consumed_r),
            "worker VMs": (vm_t, vm_v),
        },
        notes=["stateless map operators scale out faster than stateful reducers"],
        params={"rate": rate, "duration": duration, "sources": sources},
    )


# --------------------------------------------------------------------------
# Figure 9 — impact of the scale-out threshold δ
# --------------------------------------------------------------------------


def fig09_threshold(
    thresholds: tuple = (0.10, 0.30, 0.50, 0.70, 0.90),
    num_xways: int = 64,
    duration: float = 1000.0,
    quantum: float = 2.0,
    seed: int = 0,
) -> FigureResult:
    """Fig. 9: #VMs and latency as a function of threshold δ (LRB L=64)."""
    rows = []
    for threshold in thresholds:
        run = run_lrb(
            num_xways=num_xways,
            duration=duration,
            quantum=quantum,
            threshold=threshold,
            seed=seed,
        )
        rows.append(
            [
                int(threshold * 100),
                run.final_worker_vms(),
                run.latency_percentile(50) * 1e3,
                run.latency_percentile(95) * 1e3,
                len(run.scale_out_times()),
            ]
        )
    return FigureResult(
        "Fig. 9",
        f"Impact of the scale-out threshold δ (LRB L={num_xways})",
        ["δ (%)", "worker VMs", "median latency (ms)", "p95 latency (ms)", "scale outs"],
        rows,
        notes=[
            "fewer VMs as δ grows; latency suffers at both extremes "
            "(many scale outs at low δ, overload at high δ)"
        ],
        params={"L": num_xways, "duration": duration},
    )


# --------------------------------------------------------------------------
# Figure 10 — dynamic vs manual scale out
# --------------------------------------------------------------------------


def fig10_manual_vs_dynamic(
    vm_budgets: tuple = (10, 15, 20, 25, 30),
    num_xways: int = 115,
    duration: float = 1000.0,
    quantum: float = 2.0,
    seed: int = 0,
) -> FigureResult:
    """Fig. 10: latency vs #VMs for expert-manual and dynamic allocation."""
    tail_from = duration * 0.7
    rows = []
    for budget in vm_budgets:
        allocation = manual_parallelism(budget)
        run = run_lrb(
            num_xways=num_xways,
            duration=duration,
            quantum=quantum,
            scaling_enabled=False,
            parallelism=allocation,
            seed=seed,
        )
        rows.append(
            [
                "manual",
                budget,
                run.latency_percentile(50) * 1e3,
                run.latency_percentile(95) * 1e3,
                run.latency_percentile(95, t_min=tail_from) * 1e3,
            ]
        )
    dynamic = run_lrb(
        num_xways=num_xways, duration=duration, quantum=quantum, seed=seed
    )
    rows.append(
        [
            "dynamic",
            dynamic.final_worker_vms(),
            dynamic.latency_percentile(50) * 1e3,
            dynamic.latency_percentile(95) * 1e3,
            dynamic.latency_percentile(95, t_min=tail_from) * 1e3,
        ]
    )
    return FigureResult(
        "Fig. 10",
        f"Dynamic vs manual scale out (LRB L={num_xways})",
        [
            "mode",
            "worker VMs",
            "median latency (ms)",
            "p95 latency (ms)",
            "p95 steady-state (ms)",
        ],
        rows,
        notes=[
            "the dynamic policy should reach low latency with modestly more "
            "VMs than the best manual allocation",
            "steady state = the last 30% of the run, after dynamic "
            "allocation converged (manual allocations are static, so the "
            "load peak dominates either way)",
        ],
        params={"L": num_xways, "duration": duration},
    )


# --------------------------------------------------------------------------
# Figure 11 — recovery time per fault-tolerance strategy
# --------------------------------------------------------------------------


def fig11_recovery_strategies(
    rates: tuple = WORDCOUNT_RATES,
    checkpoint_interval: float = 5.0,
    window: float = 30.0,
    repeats: int = 3,
    seed: int = 0,
) -> FigureResult:
    """Fig. 11: recovery time of R+SM vs source replay vs upstream backup."""
    strategies = [
        ("R+SM", STRATEGY_RSM),
        ("SR", STRATEGY_SOURCE_REPLAY),
        ("UB", STRATEGY_UPSTREAM_BACKUP),
    ]
    rows = []
    for rate in rates:
        row = [int(rate)]
        for _label, strategy in strategies:
            row.append(
                measure_recovery_time(
                    rate=rate,
                    checkpoint_interval=checkpoint_interval,
                    strategy=strategy,
                    window=window,
                    repeats=repeats,
                    seed=seed,
                )
            )
        rows.append(row)
    return FigureResult(
        "Fig. 11",
        "Recovery time for different fault tolerance mechanisms",
        ["input rate (tuples/s)", "R+SM (s)", "SR (s)", "UB (s)"],
        rows,
        notes=[
            f"R+SM checkpoints every {checkpoint_interval} s and replays at "
            f"most that much; SR/UB re-process the whole {window} s window",
        ],
        params={"c": checkpoint_interval, "window": window, "repeats": repeats},
    )


# --------------------------------------------------------------------------
# Figure 12 — recovery time vs checkpoint interval
# --------------------------------------------------------------------------


def fig12_checkpoint_interval(
    intervals: tuple = CHECKPOINT_INTERVALS,
    rates: tuple = WORDCOUNT_RATES,
    repeats: int = 1,
    seed: int = 0,
) -> FigureResult:
    """Fig. 12: recovery time as a function of the checkpointing interval."""
    rows = []
    for interval in intervals:
        row = [interval]
        for rate in rates:
            row.append(
                measure_recovery_time(
                    rate=rate,
                    checkpoint_interval=interval,
                    strategy=STRATEGY_RSM,
                    repeats=repeats,
                    seed=seed,
                )
            )
        rows.append(row)
    return FigureResult(
        "Fig. 12",
        "Recovery time for different R+SM checkpointing intervals",
        ["interval (s)"] + [f"{int(r)} t/s (s)" for r in rates],
        rows,
        notes=["longer intervals replay more tuples; higher rates amplify it"],
        params={"repeats": repeats},
    )


# --------------------------------------------------------------------------
# Figure 13 — serial vs parallel recovery
# --------------------------------------------------------------------------


def fig13_parallel_recovery(
    intervals: tuple = CHECKPOINT_INTERVALS,
    rate: float = 500.0,
    repeats: int = 1,
    seed: int = 0,
) -> FigureResult:
    """Fig. 13: serial (π=1) vs parallel (π=2) recovery time."""
    rows = []
    for interval in intervals:
        serial = measure_recovery_time(
            rate=rate,
            checkpoint_interval=interval,
            recovery_parallelism=1,
            repeats=repeats,
            seed=seed,
        )
        parallel = measure_recovery_time(
            rate=rate,
            checkpoint_interval=interval,
            recovery_parallelism=2,
            repeats=repeats,
            seed=seed,
        )
        rows.append([interval, serial, parallel])
    return FigureResult(
        "Fig. 13",
        f"Serial vs parallel recovery using state management ({int(rate)} t/s)",
        ["interval (s)", "serial (s)", "parallel π=2 (s)"],
        rows,
        notes=[
            "parallel recovery pays fixed overhead at short intervals and "
            "wins once replay dominates"
        ],
        params={"rate": rate, "repeats": repeats},
    )


# --------------------------------------------------------------------------
# Figure 14 — checkpointing overhead vs state size
# --------------------------------------------------------------------------


def fig14_state_size(
    rates: tuple = WORDCOUNT_RATES,
    duration: float = 60.0,
    seed: int = 0,
) -> FigureResult:
    """Fig. 14: 95th-percentile latency vs state size and input rate."""
    sizes = [
        ("small (10^2)", STATE_SIZE_SMALL),
        ("medium (10^4)", STATE_SIZE_MEDIUM),
        ("large (10^5)", STATE_SIZE_LARGE),
        ("no checkpointing", None),
    ]
    rows = []
    for label, pad in sizes:
        row = [label]
        for rate in rates:
            run = run_word_count(
                rate=rate,
                duration=duration,
                checkpoint_interval=5.0,
                strategy=STRATEGY_RSM if pad is not None else STRATEGY_NONE,
                pad_entries=pad or 0,
                vocabulary_size=100,
                seed=seed,
            )
            row.append(run.latency_p(95, t_min=10.0) * 1e3)
        rows.append(row)
    return FigureResult(
        "Fig. 14",
        "Overhead of state checkpointing for different input rates and state sizes",
        ["state size"] + [f"{int(r)} t/s p95 (ms)" for r in rates],
        rows,
        notes=[
            "larger state takes longer to serialise under the state lock, "
            "stealing CPU from tuple processing"
        ],
        params={"duration": duration, "c": 5.0},
    )


# --------------------------------------------------------------------------
# Figure 15 — latency vs recovery-time trade-off
# --------------------------------------------------------------------------


def fig15_tradeoff(
    intervals: tuple = CHECKPOINT_INTERVALS,
    rate: float = 1000.0,
    pad_entries: int = STATE_SIZE_LARGE,
    seed: int = 0,
) -> FigureResult:
    """Fig. 15: checkpoint interval vs (latency overhead, recovery time)."""
    rows = []
    for interval in intervals:
        clean = run_word_count(
            rate=rate,
            duration=max(45.0, interval * 3),
            checkpoint_interval=interval,
            pad_entries=pad_entries,
            vocabulary_size=100,
            seed=seed,
        )
        recovery = measure_recovery_time(
            rate=rate, checkpoint_interval=interval, repeats=1, seed=seed
        )
        rows.append([interval, clean.latency_p(95, t_min=5.0) * 1e3, recovery])
    return FigureResult(
        "Fig. 15",
        f"Trade-off between processing latency and recovery time ({int(rate)} t/s)",
        ["interval (s)", "p95 latency (ms)", "recovery time (s)"],
        rows,
        notes=[
            "short intervals: low recovery time, high checkpoint overhead; "
            "long intervals: the reverse"
        ],
        params={"rate": rate, "pad": pad_entries},
    )


# --------------------------------------------------------------------------
# Headline result and ablations
# --------------------------------------------------------------------------


def lrating_probe(
    l_values: tuple = (350, 450),
    duration: float = 2000.0,
    quantum: float = 2.0,
    seed: int = 0,
) -> FigureResult:
    """§6.1 headline: the achievable L-rating under source/sink saturation.

    L=350 should be sustained within the LRB 5 s latency target; beyond
    the source/sink serialisation capacity (~650k tuples/s) the system
    cannot keep up no matter how many worker VMs it adds.  Uses the same
    ramp pacing as Fig. 6 (and shares its cached run for matching L).
    """
    rows = []
    for l_value in l_values:
        run = _lrb_closed_loop(l_value, duration, quantum, seed)
        p99 = run.latency_percentile(99, t_min=duration * 0.5)
        rows.append(
            [
                l_value,
                run.peak_input_rate(),
                run.final_worker_vms(),
                run.sustained(),
                p99 if not math.isnan(p99) else None,
                (not math.isnan(p99)) and p99 < 5.0 and run.sustained(),
            ]
        )
    return FigureResult(
        "L-rating",
        "Maximum sustainable Linear Road load factor",
        ["L", "peak input (t/s)", "worker VMs", "sustained", "p99 (s)", "passes LRB"],
        rows,
        notes=["the paper reports L=350 with 50 VMs, bounded by source/sink capacity"],
        params={"duration": duration},
    )


def ablation_incremental_checkpoints(
    rates: tuple = (500.0, 1000.0),
    pad_entries: int = STATE_SIZE_LARGE,
    duration: float = 60.0,
    checkpoint_interval: float = 5.0,
    seed: int = 0,
) -> FigureResult:
    """Ablation: incremental vs full checkpointing (§3.2, [17]).

    With large, sparsely-updated state, shipping only touched entries
    should all but eliminate the checkpoint latency overhead of Fig. 14
    while preserving recoverability.
    """
    from repro.experiments.harness import run_word_count

    rows = []
    for label, incremental in (("full", False), ("incremental", True)):
        row = [label]
        for rate in rates:
            query_run = _run_wordcount_ckpt_mode(
                rate, pad_entries, duration, checkpoint_interval, incremental, seed
            )
            row.append(query_run.latency_p(95, t_min=10.0) * 1e3)
        rows.append(row)
    return FigureResult(
        "Ablation-inc",
        "Full vs incremental checkpointing overhead "
        f"({pad_entries} mostly-cold state entries)",
        ["mode"] + [f"{int(r)} t/s p95 (ms)" for r in rates],
        rows,
        notes=[
            "incremental checkpoints serialise only touched entries, so the "
            "state lock is held for microseconds instead of hundreds of ms"
        ],
        params={"pad": pad_entries, "c": checkpoint_interval},
    )


def _run_wordcount_ckpt_mode(
    rate: float,
    pad_entries: int,
    duration: float,
    checkpoint_interval: float,
    incremental: bool,
    seed: int,
):
    from repro.experiments.harness import pad_counter_state
    from repro.experiments.harness import WordCountRun, default_config
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wordcount import build_word_count_query

    query = build_word_count_query(
        rate=rate, vocabulary_size=100, words_per_sentence=6, quantum=0.1
    )
    config = default_config(seed)
    config.scaling.enabled = False
    config.checkpoint.interval = checkpoint_interval
    config.checkpoint.stagger = False
    config.checkpoint.incremental = incremental
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    pad_counter_state(system, query.counter_name, pad_entries)
    system.run(until=duration)
    return WordCountRun(system, query)


def ablation_active_replication(
    rate: float = 500.0,
    duration: float = 90.0,
    fail_at: float = 45.0,
    checkpoint_interval: float = 5.0,
    seed: int = 0,
) -> FigureResult:
    """Ablation: active replication vs R+SM (§7's resource argument).

    The paper rejects active replication because it doubles the VM bill;
    this measures both sides of that trade: recovery time (AR wins — no
    state transfer or replay backlog) and billed VM-seconds (R+SM wins).
    """
    from repro.experiments.harness import run_word_count

    rows = []
    for label, strategy in (("R+SM", STRATEGY_RSM), ("active replication", "active_replication")):
        run = run_word_count(
            rate=rate,
            duration=duration,
            checkpoint_interval=checkpoint_interval,
            strategy=strategy,
            fail_at=fail_at,
            vocabulary_size=2000,
            seed=seed,
        )
        system = run.system
        rows.append(
            [
                label,
                run.recovery_time,
                system.provider.vm_seconds_billed(),
                system.provider.vm_count_allocated(),
            ]
        )
    return FigureResult(
        "Ablation-AR",
        "Active replication vs recovery using state management",
        ["strategy", "recovery time (s)", "billed VM-seconds", "final VMs"],
        rows,
        notes=[
            "AR recovers in ~detection time but pays for replica VMs the "
            "whole run — the paper's case against it at cloud scale"
        ],
        params={"rate": rate, "fail_at": fail_at},
    )


def ablation_vm_pool(
    pool_sizes: tuple = (0, 2, 4),
    num_xways: int = 64,
    duration: float = 800.0,
    quantum: float = 2.0,
    provisioning_delay: float = 90.0,
    seed: int = 0,
) -> FigureResult:
    """Ablation: the VM pool's effect on scale-out latency (§5.2).

    Without a pool every scale out waits for minutes-scale provisioning,
    prolonging overload; with a small pool scale out completes in seconds.
    """
    from repro.experiments.harness import default_config
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.lrb import build_lrb_query

    rows = []
    for pool_size in pool_sizes:
        query = build_lrb_query(num_xways, duration, quantum=quantum)
        config = default_config(seed)
        config.cloud.pool_size = pool_size
        config.cloud.provisioning_delay = provisioning_delay
        config.latency_sample_every = 10
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, generators=query.generators)
        system.run(until=duration)
        durations = system.metrics.timeseries("scale_out_duration").values
        mean_duration = sum(durations) / len(durations) if durations else None
        reservoir = system.metrics.latencies.get("latency:sink")
        p95 = reservoir.percentile(95) * 1e3 if reservoir and len(reservoir) else None
        rows.append(
            [
                pool_size,
                len(durations),
                mean_duration,
                p95,
                system.worker_vm_count(),
            ]
        )
    return FigureResult(
        "Ablation",
        "VM pool size vs scale-out completion time (LRB)",
        ["pool size", "scale outs", "mean scale-out time (s)", "p95 latency (ms)", "VMs"],
        rows,
        notes=[f"provisioning delay {provisioning_delay:.0f} s without a pooled VM"],
        params={"L": num_xways, "duration": duration},
    )
