"""Plain-text rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
report, as aligned text tables — the repo's equivalent of regenerating
each figure.
"""

from __future__ import annotations

import math
from typing import Any, Iterable, Sequence

import numpy as np


def format_value(value: Any) -> str:
    """Human-friendly formatting for one table cell."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str | None = None
) -> str:
    """Render an aligned text table."""
    text_rows = [[format_value(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    name: str,
    times: Sequence[float],
    values: Sequence[float],
    max_points: int = 40,
    unit: str = "",
) -> str:
    """Render a downsampled (time, value) series as rows."""
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    if times.size == 0:
        return f"{name}: (no data)"
    if times.size > max_points:
        idx = np.linspace(0, times.size - 1, max_points).astype(int)
        times = times[idx]
        values = values[idx]
    rows = [(f"{t:.0f}", format_value(v)) for t, v in zip(times, values)]
    return render_table(["t(s)", f"{name}{f' ({unit})' if unit else ''}"], rows)


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """A one-line unicode sparkline — quick visual shape check."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return ""
    if values.size > width:
        idx = np.linspace(0, values.size - 1, width).astype(int)
        values = values[idx]
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = float(values.min()), float(values.max())
    if hi - lo < 1e-12:
        return blocks[0] * values.size
    scaled = ((values - lo) / (hi - lo) * (len(blocks) - 1)).astype(int)
    return "".join(blocks[i] for i in scaled)
