"""Chaos sweep experiment.

Not a figure from the paper: a robustness experiment validating the
fault-tolerance claims end to end.  Each seed drives one
:class:`~repro.chaos.runner.ChaosRunner` run — network loss, duplication,
re-ordering and delay spikes plus Poisson crash-stop failures — and the
run is audited by the invariant checker and compared window-by-window
against a failure-free golden run.  A violating seed reproduces from the
seed alone, and with ``trace_dir`` set it also dumps a causally linked
JSONL trace of the failing run::

    from repro.chaos import ChaosRunner
    result = ChaosRunner(trace_dir="chaos-traces").run_seed(13)
    summary = result.describe()  # violations + trace path, if any
"""

from __future__ import annotations

from repro.chaos.runner import ChaosRunner
from repro.experiments.harness import FigureResult


def chaos_sweep(
    seeds: tuple = tuple(range(20)),
    workload: str = "wordcount",
    rate: float = 200.0,
    duration: float = 150.0,
    mtbf: float = 60.0,
    drop_rate: float = 0.02,
    duplicate_rate: float = 0.01,
    reorder_rate: float = 0.02,
    delay_rate: float = 0.005,
    trace_dir: str | None = None,
) -> FigureResult:
    """Seeded chaos sweep; one row per seed, golden run shared."""
    runner = ChaosRunner(
        workload=workload,
        rate=rate,
        duration=duration,
        mtbf=mtbf,
        drop_rate=drop_rate,
        duplicate_rate=duplicate_rate,
        reorder_rate=reorder_rate,
        delay_rate=delay_rate,
        trace_dir=trace_dir,
    )
    results = runner.sweep(list(seeds))
    rows = []
    notes = [
        "faults are physical-layer perturbations under a reliable "
        "transport: drops surface as retransmit latency, duplicates reach "
        "the application's duplicate filter; true loss only via VM crashes",
        "Poisson victims are sampled within the paper's fault model: a VM "
        "holding the sole surviving copy of a slot's state is exempt "
        "(§3.3 concurrent primary+backup loss)",
        "reproduce any seed with ChaosRunner().run_seed(seed).describe()",
    ]
    for res in results:
        rows.append(
            [
                res.seed,
                res.failures,
                res.faults,
                res.recoveries,
                res.aborts,
                len(res.violations),
                "OK" if res.survived else "VIOLATED",
            ]
        )
    for res in results:
        if not res.survived:
            notes.append(res.describe())
    survived = sum(1 for res in results if res.survived)
    return FigureResult(
        "Chaos",
        f"Chaos sweep: {survived}/{len(results)} seeds upheld every "
        "invariant",
        [
            "seed",
            "crashes",
            "net faults",
            "recoveries",
            "aborts",
            "violations",
            "verdict",
        ],
        rows,
        notes=notes,
        params={
            "workload": workload,
            "rate": rate,
            "duration": duration,
            "mtbf": mtbf,
            "drop": drop_rate,
            "dup": duplicate_rate,
            "reorder": reorder_rate,
            "delay": delay_rate,
        },
    )
