"""Runners for the scale-out experiments (LRB and map/reduce workloads)."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.experiments.harness import default_config
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.lrb import LRBQuery, build_lrb_query
from repro.workloads.wikipedia import WikipediaTopKQuery, build_wikipedia_topk_query


@dataclass
class ScaleOutRun:
    """Measurements from one closed/open-loop scale-out run."""

    system: StreamProcessingSystem
    duration: float

    def input_rate_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, rates) of tuples entering the sources."""
        return self.system.metrics.rate("input").series()

    def processed_series(self, op_name: str) -> tuple[np.ndarray, np.ndarray]:
        """(times, rates) of tuples processed by one operator."""
        return self.system.metrics.rate(f"processed:{op_name}").series()

    def vm_series(self) -> tuple[np.ndarray, np.ndarray]:
        """(times, counts) of live worker VMs."""
        return self.system.metrics.timeseries("vms:workers").as_arrays()

    def latency_percentile(
        self, q: float, op: str = "sink", t_min: float | None = None, t_max: float | None = None
    ) -> float:
        """Weighted latency percentile at one operator (seconds)."""
        reservoir = self.system.metrics.latencies.get(f"latency:{op}")
        if reservoir is None or len(reservoir) == 0:
            return math.nan
        return reservoir.percentile(q, t_min=t_min, t_max=t_max)

    def latency_over_time(
        self, bin_width: float = 20.0, q: float = 95.0, op: str = "sink"
    ) -> tuple[np.ndarray, np.ndarray]:
        """Binned latency percentile series (the Fig. 7 curve)."""
        reservoir = self.system.metrics.latencies.get(f"latency:{op}")
        if reservoir is None:
            return np.array([]), np.array([])
        return reservoir.over_time(bin_width, q)

    def final_worker_vms(self) -> int:
        """Worker VM count at the end of the run."""
        return self.system.worker_vm_count()

    def scale_out_times(self) -> list[float]:
        """Commit times of completed scale-out operations."""
        return [t for t, _k, _d in self.system.metrics.events_of_kind("scale_out")]

    def peak_input_rate(self) -> float:
        """Highest observed input rate (tuples/s)."""
        return self.system.metrics.rate("input").max_rate()

    def peak_throughput(self, op_name: str = "sink") -> float:
        """Highest observed processing rate at one operator."""
        return self.system.metrics.rate(f"processed:{op_name}").max_rate()

    def dropped_weight(self) -> float:
        """Total tuples dropped to queue overflow (open loop)."""
        return sum(
            v for k, v in self.system.metrics.counters.items() if k.startswith("overflow:")
        )


@dataclass
class LRBRun(ScaleOutRun):
    query: LRBQuery = None  # type: ignore[assignment]

    def sustained(self, tail_fraction: float = 0.1, tolerance: float = 0.15) -> bool:
        """Did sink throughput track the input rate at the end of the run?

        Compares total weight over the tail window — with multiple result
        tuples per input this is a throughput-tracking check, not a strict
        conservation law.
        """
        t0 = self.duration * (1.0 - tail_fraction)
        in_times, in_rates = self.input_rate_series()
        out_times, out_rates = self.processed_series("sink")
        tail_in = in_rates[in_times >= t0]
        tail_out = out_rates[out_times >= t0]
        if tail_in.size == 0 or tail_out.size == 0:
            return False
        return float(tail_out.mean()) >= float(tail_in.mean()) * (1.0 - tolerance)


def run_lrb(
    num_xways: int,
    duration: float,
    quantum: float = 2.0,
    threshold: float = 0.70,
    scaling_enabled: bool = True,
    parallelism: dict[str, int] | None = None,
    max_vms: int | None = None,
    pool_size: int = 6,
    seed: int = 0,
    latency_sample_every: int = 20,
    bands: int = 2,
) -> LRBRun:
    """Run the LRB query on a fresh SPS deployment (closed loop)."""
    query = build_lrb_query(num_xways, duration, bands=bands, quantum=quantum)
    config = default_config(seed)
    config.scaling.enabled = scaling_enabled
    config.scaling.threshold = threshold
    config.scaling.max_vms = max_vms
    config.cloud.pool_size = pool_size
    config.latency_sample_every = latency_sample_every
    # Rate bins must span at least one generator quantum, or per-tick
    # injection bursts masquerade as rate spikes.
    config.rate_bin = max(1.0, 2.0 * quantum)
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, parallelism=parallelism, generators=query.generators)
    system.run(until=duration)
    run = LRBRun(system, duration)
    run.query = query
    return run


@dataclass
class WikipediaRun(ScaleOutRun):
    query: WikipediaTopKQuery = None  # type: ignore[assignment]

    def consumed_series(self) -> tuple[np.ndarray, np.ndarray]:
        """Tuples consumed per second by the query (the Fig. 8 y-axis)."""
        return self.processed_series(self.query.map_name)

    def time_to_sustain(self, tolerance: float = 0.05) -> float | None:
        """First time the consumed rate reaches the input rate and stays."""
        in_times, in_rates = self.input_rate_series()
        out_times, out_rates = self.consumed_series()
        if in_times.size == 0 or out_times.size == 0:
            return None
        target = float(np.median(in_rates)) * (1.0 - tolerance)
        for t, rate in zip(out_times, out_rates):
            if rate >= target:
                return float(t)
        return None


def run_wikipedia_openloop(
    rate: float = 550_000.0,
    duration: float = 600.0,
    sources: int = 18,
    queue_capacity: float | None = None,
    pool_size: int = 4,
    seed: int = 0,
    quantum: float = 1.0,
) -> WikipediaRun:
    """Run the §6.1 open-loop map/reduce query, initially under-provisioned.

    ``queue_capacity`` defaults to half a second of input per instance:
    enough to absorb scheduling jitter, small enough that overload drops
    tuples (the open-loop behaviour of §6.1).
    """
    query, parallelism = build_wikipedia_topk_query(
        rate=rate, sources=sources, quantum=quantum
    )
    config = default_config(seed)
    config.scaling.enabled = True
    config.queue_capacity = (
        queue_capacity if queue_capacity is not None else max(1000.0, rate * 0.5)
    )
    config.cloud.pool_size = pool_size
    config.latency_sample_every = 20
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, parallelism=parallelism, generators=query.generators)
    system.run(until=duration)
    run = WikipediaRun(system, duration)
    run.query = query
    return run
