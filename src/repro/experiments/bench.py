"""Data-plane performance harness (``python -m repro bench``).

Seeded micro and macro benchmarks for the simulation data plane:

* **kernel** — raw discrete-event throughput (events/sec) of the
  scheduler heap, via a self-rescheduling event chain;
* **throughput** — end-to-end word-count tuple throughput with the
  batched data plane off and on; the speedup is the headline number for
  output batching (one network message and one CPU work item per batch);
* **dataplane** — the columnar block plane against the list-of-Tuple
  batched plane on the same word-count run (tuples/wall-sec, identical
  simulated behaviour), plus the queue-depth ceiling of credit-based
  backpressure under a deliberately overloaded sink — bounded with flow
  control on, monotonically growing with it off (simulated time, so
  exact);
* **checkpoint** — ``ProcessingState.snapshot()`` latency against state
  size for the copy-on-write snapshot path, compared with an eager
  deep copy, plus the deferred cost of re-owning a small write set;
* **migration** — longest stop-the-world stall and post-migration sink
  p99 while scaling a padded operator, all-at-once versus fluid chunked
  transfer (simulated time, so exact);
* **recovery** — simulated-time recovery latency after a mid-run crash
  (deterministic: derived entirely from the seed);
* **skew_sweep** — Zipf-exponent sweep of the Wikipedia top-k query,
  interval-only splitting versus hot-key-aware carve-out: throughput,
  data-path p99 and the hot slot's final utilisation show where
  interval splitting plateaus on a single dominating key (simulated
  time, so exact).

Wall-clock numbers vary across machines; simulated-time numbers are
exact.  Results are written as JSON (default ``BENCH_dataplane.json``)
for CI's non-gating regression check (``benchmarks/compare_bench.py``).
"""

from __future__ import annotations

import json
import time
from typing import Any

from repro.config import BatchingConfig, SystemConfig
from repro.core.state import ProcessingState, _copy_value
from repro.errors import ReproError
from repro.sim.simulator import Simulator

#: Benchmark presets.  ``smoke`` exists for tests; CI runs ``small``.
PRESETS: dict[str, dict[str, Any]] = {
    "smoke": {
        "kernel_events": 20_000,
        "rate": 1_000.0,
        "duration": 5.0,
        "dataplane_rate": 1_000.0,
        "dataplane_duration": 5.0,
        "operator_tuples": 30_000,
        "overload_rate": 300.0,
        "overload_duration": 12.0,
        "state_sizes": (1_000,),
        "touched_keys": 100,
        "recovery_duration": 0.0,  # skipped
        "migration_entries": 2_000,
        "migration_chunks": 4,
        "backend_entries": 1_000,
        "backend_hot_entries": 100,
        "backend_chunks": 4,
        "detection_rate": 200.0,
        "detection_duration": 12.0,
        "phi_thresholds": (2.0, 8.0),
        "heartbeat_drop": 0.25,
        "sweep_entries": 2_000,
        "sweep_rate": 200.0,
        "sweep_duration": 10.0,
        "sweep_interval": 2.0,
        "skew_exponents": (1.5,),
        "skew_rate": 97_000.0,
        "skew_duration": 60.0,
        "skew_languages": 8,
        "skew_sources": 2,
        "skew_map_parallelism": 2,
        "skew_max_vms": 6,
    },
    "small": {
        "kernel_events": 300_000,
        "rate": 4_000.0,
        "duration": 20.0,
        "dataplane_rate": 4_000.0,
        "dataplane_duration": 20.0,
        "operator_tuples": 200_000,
        "overload_rate": 500.0,
        "overload_duration": 30.0,
        "state_sizes": (1_000, 10_000, 100_000),
        "touched_keys": 1_000,
        "recovery_duration": 90.0,
        "migration_entries": 100_000,
        "migration_chunks": 8,
        "backend_entries": 20_000,
        "backend_hot_entries": 2_000,
        "backend_chunks": 8,
        "detection_rate": 400.0,
        "detection_duration": 30.0,
        "phi_thresholds": (2.0, 4.0, 8.0),
        "heartbeat_drop": 0.25,
        "sweep_entries": 20_000,
        "sweep_rate": 250.0,
        "sweep_duration": 60.0,
        "sweep_interval": 5.0,
        "skew_exponents": (1.0, 1.5),
        "skew_rate": 97_000.0,
        "skew_duration": 240.0,
        "skew_languages": 8,
        "skew_sources": 2,
        "skew_map_parallelism": 2,
        "skew_max_vms": 6,
    },
    "default": {
        "kernel_events": 1_000_000,
        "rate": 8_000.0,
        "duration": 30.0,
        "dataplane_rate": 8_000.0,
        "dataplane_duration": 30.0,
        "operator_tuples": 400_000,
        "overload_rate": 500.0,
        "overload_duration": 30.0,
        "state_sizes": (1_000, 10_000, 100_000, 500_000),
        "touched_keys": 1_000,
        "recovery_duration": 90.0,
        "migration_entries": 100_000,
        "migration_chunks": 8,
        "backend_entries": 50_000,
        "backend_hot_entries": 5_000,
        "backend_chunks": 8,
        "detection_rate": 400.0,
        "detection_duration": 30.0,
        "phi_thresholds": (1.0, 2.0, 4.0, 8.0, 12.0),
        "heartbeat_drop": 0.25,
        "sweep_entries": 50_000,
        "sweep_rate": 500.0,
        "sweep_duration": 120.0,
        "sweep_interval": 5.0,
        "skew_exponents": (1.0, 1.25, 1.5),
        "skew_rate": 97_000.0,
        "skew_duration": 300.0,
        "skew_languages": 8,
        "skew_sources": 2,
        "skew_map_parallelism": 2,
        "skew_max_vms": 6,
    },
}


def bench_kernel(n_events: int) -> dict[str, float]:
    """Events/sec of the kernel: one self-rescheduling chain of
    ``n_events`` zero-work events, so the heap dominates the cost."""
    sim = Simulator()
    remaining = [n_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            sim.schedule(0.001, tick)

    sim.schedule(0.001, tick)
    start = time.perf_counter()
    processed = sim.run()
    wall = time.perf_counter() - start
    return {
        "events": processed,
        "wall_seconds": round(wall, 4),
        "events_per_sec": round(processed / wall, 1),
    }


def _run_wordcount(
    rate: float, duration: float, batched: bool, fail_at: float | None = None
):
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wordcount import build_word_count_query

    query = build_word_count_query(
        rate=rate, window=10.0, vocabulary_size=400, quantum=0.1
    )
    config = SystemConfig()
    config.scaling.enabled = False
    if batched:
        config.batching = BatchingConfig(enabled=True, max_tuples=64, linger=0.005)
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    if fail_at is not None:
        system.injector.fail_target_at(lambda: system.vm_of("counter"), fail_at)
    start = time.perf_counter()
    system.run(until=duration)
    wall = time.perf_counter() - start
    return system, query, wall


def bench_throughput(rate: float, duration: float) -> dict[str, Any]:
    """Wall-clock tuple throughput of the word-count pipeline, batching
    off versus on.  Identical simulated work; the speedup is pure
    per-tuple kernel/network overhead removed by coalescing."""
    out: dict[str, Any] = {}
    for label, batched in (("unbatched", False), ("batched", True)):
        system, _query, wall = _run_wordcount(rate, duration, batched)
        processed = sum(
            inst.processed_weight for inst in system.instances.values()
        )
        out[label] = {
            "wall_seconds": round(wall, 3),
            "tuples_processed": processed,
            "tuples_per_wall_sec": round(processed / wall, 1),
            "network_messages": system.network.messages_sent,
        }
    out["speedup"] = round(
        out["batched"]["tuples_per_wall_sec"]
        / out["unbatched"]["tuples_per_wall_sec"],
        3,
    )
    out["message_reduction"] = round(
        out["unbatched"]["network_messages"]
        / max(out["batched"]["network_messages"], 1),
        2,
    )
    return out


def _run_columnar_wordcount(
    rate: float, duration: float, columnar: bool
) -> dict[str, Any]:
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wordcount import build_word_count_query

    query = build_word_count_query(
        rate=rate, window=10.0, vocabulary_size=400, quantum=0.1
    )
    config = SystemConfig()
    config.scaling.enabled = False
    config.batching = BatchingConfig(
        enabled=True, max_tuples=64, linger=0.005, columnar=columnar
    )
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    start = time.perf_counter()
    system.run(until=duration)
    wall = time.perf_counter() - start
    processed = sum(inst.processed_weight for inst in system.instances.values())
    return {
        "wall_seconds": round(wall, 3),
        "tuples_processed": processed,
        "tuples_per_wall_sec": round(processed / wall, 1),
        "network_messages": system.network.messages_sent,
    }


def _run_operator_dataplane(
    n_tuples: int, batch_size: int, columnar: bool
) -> dict[str, Any]:
    """Data-plane throughput through the word-count counter instance.

    Pre-builds identical batches of word tuples and delivers them
    straight into the counter's ``receive_batch`` / ``receive_block``
    entry points, then drains the resulting CPU work items.  Unlike the
    pipeline run this isolates the receive -> process path the columnar
    plane replaces — source generation, emission and simulator
    scheduling (shared by both representations) are outside the timed
    region's variable part, so the ratio is the pure data-plane speedup.
    """
    from repro.core.tuples import Tuple, TupleBlock
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wordcount import build_word_count_query

    # Rate ~0 and a huge window: the deployed pipeline is a static
    # harness — the source never fires and the counter never flushes, so
    # the only work in the run is the injected batches below.
    query = build_word_count_query(
        rate=1e-6,
        window=1e9,
        vocabulary_size=400,
        quantum=1e6,
        measure_counter_latency=False,
    )
    config = SystemConfig()
    config.scaling.enabled = False
    config.checkpoint.interval = 1e9
    config.batching = BatchingConfig(
        enabled=True, max_tuples=batch_size, linger=0.005, columnar=columnar
    )
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    counter = system.instances_of("counter")[0]
    origin = system.instances_of("splitter")[0].uid
    words = [f"word{i:04d}" for i in range(400)]
    batches: list[list[Tuple]] = []
    ts = 0
    for start in range(0, n_tuples, batch_size):
        rows = []
        for j in range(start, min(start + batch_size, n_tuples)):
            ts += 1
            rows.append(Tuple(ts, words[j % 400], None, 1, 0.0, origin))
        batches.append(rows)
    if columnar:
        payloads: list[Any] = [TupleBlock.from_tuples(rows) for rows in batches]
        deliver = counter.receive_block
    else:
        payloads = batches
        deliver = counter.receive_batch
    start_t = time.perf_counter()
    for payload in payloads:
        deliver(payload)
    system.run(until=n_tuples * 1e-4 + 1.0)
    wall = time.perf_counter() - start_t
    if counter.processed_weight != n_tuples:
        raise ReproError(
            f"dataplane bench drained {counter.processed_weight} of "
            f"{n_tuples} tuples"
        )
    return {
        "tuples": n_tuples,
        "batch_size": batch_size,
        "wall_seconds": round(wall, 3),
        "tuples_per_wall_sec": round(n_tuples / wall, 1),
    }


def _run_overloaded_sink(
    rate: float, duration: float, backpressure: bool
) -> dict[str, Any]:
    from repro.core.query import QueryGraph
    from repro.runtime.sink import SinkOperator
    from repro.runtime.source import SourceOperator
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.synthetic import constant_rate
    from repro.workloads.text import SentenceGenerator
    from repro.workloads.wordcount import WordSplitter

    graph = QueryGraph()
    graph.add_operator(SourceOperator("source"), source=True)
    graph.add_operator(WordSplitter("splitter"))
    # Sink per-tuple cost sized so the incoming word weight (~8x the
    # sentence rate) is ~2x the sink VM's capacity (13 CPU-s/s — sinks
    # deploy on the big source/sink instance type): it falls behind
    # immediately and never catches up.
    graph.add_operator(
        SinkOperator("sink", None, cost_per_tuple=1.0e-2), sink=True
    )
    graph.chain("source", "splitter", "sink")
    graph.validate()
    generator = SentenceGenerator(
        constant_rate(rate),
        vocabulary_size=400,
        words_per_sentence=8,
        quantum=0.1,
    )
    config = SystemConfig()
    config.scaling.enabled = False
    # No control-plane flushes inside the measurement window: a
    # checkpoint barrier pierces backpressure by design, which would
    # blur the pure flow-control ceiling being measured here.
    config.checkpoint.interval = duration * 10.0
    config.batching = BatchingConfig(
        enabled=True, max_tuples=64, linger=0.005, columnar=True
    )
    config.flow.enabled = backpressure
    system = StreamProcessingSystem(config)
    system.deploy(graph, generators={"source": generator})
    sink = next(
        inst for inst in system.instances.values() if inst.op_name == "sink"
    )
    samples: list[float] = []
    system.sim.every(
        1.0, lambda: samples.append(round(sink.queue_depth, 1))
    )
    system.run(until=duration)
    quarter = len(samples) // 4
    monotonic = len(samples) >= 8 and (
        samples[quarter]
        < samples[2 * quarter]
        < samples[3 * quarter]
        < samples[-1]
    )
    flow = config.flow
    # The sender can hold at most its initial credit in unprocessed
    # weight at the receiver, plus one grant quantum and one batch
    # already in flight when the account ran dry.
    bound = flow.initial_credits + flow.grant_quantum + config.batching.max_tuples
    peak = max(samples) if samples else 0.0
    return {
        "backpressure": backpressure,
        "peak_queue_depth": peak,
        "final_queue_depth": samples[-1] if samples else 0.0,
        "depth_bound": bound,
        "bounded": peak <= bound,
        "monotonic_growth": monotonic,
        "shed_weight": round(
            system.metrics.counter("backpressure_shed:source"), 1
        ),
        "deferrals": int(system.metrics.counter("backpressure.deferrals")),
        "blocks": int(system.telemetry.counter("backpressure.blocks")),
    }


def bench_dataplane(
    rate: float,
    duration: float,
    operator_tuples: int,
    overload_rate: float,
    overload_duration: float,
) -> dict[str, Any]:
    """Columnar block plane vs list-of-Tuple batches, plus backpressure.

    The headline ``columnar_speedup`` drives prebuilt word batches
    straight through the word-count counter's receive -> process path
    (``rows`` / ``columnar``): it measures exactly the code the block
    representation and the vectorized kernels replace.  The ``pipeline``
    section runs the full batched word-count pipeline end to end with
    ``batching.columnar`` off and on — simulated behaviour (and the
    message count) is identical, but source generation, emission and
    event scheduling are shared by both representations, so the
    end-to-end ratio is damped by that fixed cost.  The backpressure
    half overloads a slow sink at ~2x its capacity and samples its
    queue depth each simulated second: with credit flow control off the
    depth grows monotonically without bound; with it on the depth stays
    under the credit ceiling and the excess input is shed at the
    source.  Depth numbers are simulated-time, hence exact and seeded.
    """
    out: dict[str, Any] = {
        "rows": _run_operator_dataplane(operator_tuples, 64, False),
        "columnar": _run_operator_dataplane(operator_tuples, 64, True),
    }
    out["columnar_speedup"] = round(
        out["columnar"]["tuples_per_wall_sec"]
        / out["rows"]["tuples_per_wall_sec"],
        3,
    )
    pipeline: dict[str, Any] = {}
    for label, columnar in (("rows", False), ("columnar", True)):
        pipeline[label] = _run_columnar_wordcount(rate, duration, columnar)
    pipeline["speedup"] = round(
        pipeline["columnar"]["tuples_per_wall_sec"]
        / pipeline["rows"]["tuples_per_wall_sec"],
        3,
    )
    out["pipeline"] = pipeline
    out["backpressure"] = {
        "off": _run_overloaded_sink(overload_rate, overload_duration, False),
        "on": _run_overloaded_sink(overload_rate, overload_duration, True),
    }
    return out


def _timed(fn, *args) -> float:
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def bench_checkpoint(sizes: tuple, touched_keys: int) -> dict[str, Any]:
    """snapshot() latency vs state size: copy-on-write vs eager copy.

    The CoW snapshot is a shallow dict copy regardless of value sizes;
    the deferred cost only materialises for keys mutated afterwards, so
    ``cow_touch_ms`` is proportional to the post-checkpoint write set.
    """
    results = {}
    for n in sizes:
        entries = {f"key-{i}": [i, i + 1] for i in range(n)}
        state = ProcessingState(dict(entries))
        cow_ms = _timed(state.snapshot) * 1e3

        def eager_copy(src=entries) -> dict:
            return {k: _copy_value(v) for k, v in src.items()}

        eager_ms = _timed(eager_copy) * 1e3
        # Deferred CoW cost: first mutating touch of a small write set.
        touch = min(touched_keys, n)

        def touch_keys(st=state, count=touch) -> None:
            for i in range(count):
                st[f"key-{i}"].append(0)

        touch_ms = _timed(touch_keys) * 1e3
        results[str(n)] = {
            "cow_snapshot_ms": round(cow_ms, 3),
            "eager_copy_ms": round(eager_ms, 3),
            "cow_touch_ms": round(touch_ms, 3),
            "touched_keys": touch,
            "snapshot_speedup": round(eager_ms / max(cow_ms, 1e-6), 2),
        }
    return results


def _run_migration(
    entries: int, max_chunks: int, rate: float = 250.0, until: float = 120.0
) -> dict[str, Any]:
    from repro.experiments.harness import pad_counter_state
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wordcount import build_word_count_query

    query = build_word_count_query(
        rate=rate, window=10.0, vocabulary_size=400, quantum=0.1
    )
    config = SystemConfig()
    config.scaling.enabled = False
    config.migration.max_chunks = max_chunks
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    pad_counter_state(system, "counter", entries)

    def trigger() -> None:
        slots = system.query_manager.slots_of("counter")
        ok = system.scale_out.scale_out_slot(slots[0].uid, 2)
        if not ok:
            raise ReproError("migration benchmark: scale out did not start")

    scale_at = until / 2
    system.sim.schedule_at(scale_at, trigger)
    start = time.perf_counter()
    system.run(until=until)
    wall = time.perf_counter() - start
    if system.reconfig.operations_completed < 1:
        raise ReproError("migration benchmark: scale out did not complete")
    pauses = system.metrics.timeseries("migration_pause:counter").values
    sink = system.metrics.latencies.get("latency:sink")
    p99 = sink.percentile(99, t_min=scale_at) if sink and len(sink) else None
    return {
        "max_chunks": max_chunks,
        "chunks_shipped": max(len(pauses), 1),
        "max_pause_ms": round(max(pauses) * 1e3, 3),
        "sink_p99_ms": round(p99 * 1e3, 3) if p99 is not None else None,
        "wall_seconds": round(wall, 3),
    }


def bench_migration(entries: int, max_chunks: int) -> dict[str, Any]:
    """All-at-once versus fluid chunked migration of a padded operator.

    Both runs scale the same ``entries``-entry counter from one to two
    partitions mid-run.  The all-at-once path captures the moving state
    in one stop-the-world serialize (O(total state)); the fluid path
    pays O(chunk) per chunk while the source keeps serving the rest.
    ``pause_reduction`` is the headline number: how much shorter the
    longest stall gets.  Simulated-time numbers are exact.
    """
    all_at_once = _run_migration(entries, max_chunks=1)
    chunked = _run_migration(entries, max_chunks=max_chunks)
    return {
        "entries": entries,
        "all_at_once": all_at_once,
        "chunked": chunked,
        "pause_reduction": round(
            all_at_once["max_pause_ms"] / max(chunked["max_pause_ms"], 1e-9), 2
        ),
    }


def _backend_system(
    kind: str, max_hot: int, rate: float, max_chunks: int | None = None
):
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wordcount import build_word_count_query

    query = build_word_count_query(
        rate=rate, window=10.0, vocabulary_size=400, quantum=0.1
    )
    config = SystemConfig()
    config.scaling.enabled = False
    if max_chunks is not None:
        config.migration.max_chunks = max_chunks
    config.state_backend.kind = kind
    config.state_backend.max_hot_entries = max_hot
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    return system


def _tier_counters(system, op_name: str) -> dict[str, int]:
    """Sum the per-slot spill/fault/cold-read counters for ``op_name``."""
    totals = {"spills": 0, "faults": 0, "cold_reads": 0}
    for counter in totals:
        prefix = f"state_{counter}:{op_name}:"
        totals[counter] = int(
            sum(
                value
                for name, value in system.metrics.counters.items()
                if name.startswith(prefix)
            )
        )
    return totals


def _run_backend_profile(
    kind: str,
    entries: int,
    max_hot: int,
    max_chunks: int,
    rate: float = 250.0,
    until: float = 120.0,
) -> dict[str, Any]:
    from repro.experiments.harness import pad_counter_state

    system = _backend_system(kind, max_hot, rate, max_chunks=max_chunks)
    pad_counter_state(system, "counter", entries)

    def trigger() -> None:
        slots = system.query_manager.slots_of("counter")
        ok = system.scale_out.scale_out_slot(slots[0].uid, 2)
        if not ok:
            raise ReproError("backend benchmark: scale out did not start")

    scale_at = until / 2
    system.sim.schedule_at(scale_at, trigger)
    start = time.perf_counter()
    system.run(until=until)
    wall = time.perf_counter() - start
    if system.reconfig.operations_completed < 1:
        raise ReproError("backend benchmark: scale out did not complete")
    pauses = system.metrics.timeseries("migration_pause:counter").values
    peaks = system.metrics.timeseries("state_peak_hot:counter").values
    sink = system.metrics.latencies.get("latency:sink")
    p99 = sink.percentile(99, t_min=scale_at) if sink and len(sink) else None
    profile: dict[str, Any] = {
        "entries": entries,
        "max_hot_entries": max_hot,
        "peak_resident_entries": int(max(peaks)) if peaks else 0,
        "chunks_shipped": max(len(pauses), 1),
        "migration_max_pause_ms": round(max(pauses) * 1e3, 3),
        "state_io_seconds": round(
            system.metrics.counter("state_io:counter"), 6
        ),
        "external_write_io_seconds": round(
            system.metrics.counter("external_write_io"), 6
        ),
        "sink_p99_ms": round(p99 * 1e3, 3) if p99 is not None else None,
        "wall_seconds": round(wall, 3),
    }
    profile.update(_tier_counters(system, "counter"))
    return profile


def _run_backend_recovery(
    kind: str,
    entries: int,
    max_hot: int,
    rate: float = 250.0,
    duration: float = 90.0,
) -> dict[str, Any]:
    from repro.experiments.harness import pad_counter_state

    system = _backend_system(kind, max_hot, rate)
    pad_counter_state(system, "counter", entries)
    fail_at = duration / 2
    system.injector.fail_target_at(lambda: system.vm_of("counter"), fail_at)
    system.run(until=duration)
    failures = system.metrics.events_of_kind("failure")
    recoveries = system.metrics.events_of_kind("recovery_complete")
    if not failures or not recoveries:
        raise ReproError("backend recovery benchmark saw no failure/recovery")
    return {
        "failed_at": round(failures[0][0], 3),
        "recovered_at": round(recoveries[0][0], 3),
        "sim_recovery_seconds": round(recoveries[0][0] - failures[0][0], 3),
    }


def bench_backends(
    entries: int, max_hot: int, max_chunks: int, recovery_duration: float
) -> dict[str, Any]:
    """State-backend sweep: memory vs spill vs external tiering.

    Each backend scales a padded ``entries``-entry counter (10x the
    spill hot bound) from one to two partitions mid-run via fluid
    chunked migration, then separately recovers it from a mid-run VM
    crash.  ``peak_resident_entries`` is the headline number: the
    memory backend keeps all O(total) entries resident, while the
    tiered backends bound the hot tier at O(max_hot_entries + chunk) —
    checkpoints and chunked migration stream the cold tier without
    faulting it in.  All numbers except ``wall_seconds`` are simulated
    time or entry counts, hence exact and seeded.
    """
    out: dict[str, Any] = {}
    for kind in ("memory", "spill", "external"):
        profile = _run_backend_profile(kind, entries, max_hot, max_chunks)
        if recovery_duration > 0:
            profile["recovery"] = _run_backend_recovery(
                kind, entries, max_hot, duration=recovery_duration
            )
        out[kind] = profile
    return out


def _run_checkpoint_mode(
    mode: str,
    interval: float,
    entries: int,
    rate: float,
    duration: float,
) -> dict[str, Any]:
    from repro.experiments.harness import pad_counter_state
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wordcount import build_word_count_query

    query = build_word_count_query(
        rate=rate, window=10.0, vocabulary_size=400, quantum=0.1
    )
    config = SystemConfig()
    config.scaling.enabled = False
    config.checkpoint.interval = interval
    config.checkpoint.mode = mode
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    pad_counter_state(system, "counter", entries)
    start = time.perf_counter()
    system.run(until=duration)
    wall = time.perf_counter() - start
    telemetry = system.telemetry
    sink = system.metrics.latencies.get("latency:sink")
    p99 = sink.percentile(99) if sink and len(sink) else None
    counter = system.metrics.latencies.get("latency:counter")
    counter_p99 = counter.percentile(99) if counter and len(counter) else None
    delta_cuts = telemetry.counter("checkpoint.cuts.delta")
    delta_bytes = telemetry.counter("checkpoint.delta_bytes")
    full_cuts = telemetry.counter("checkpoint.cuts.full")
    full_bytes = telemetry.counter("checkpoint.full_bytes")
    return {
        "mode": mode,
        "interval": interval,
        "sink_p99_ms": round(p99 * 1e3, 3) if p99 is not None else None,
        "counter_p99_ms": round(counter_p99 * 1e3, 3)
        if counter_p99 is not None
        else None,
        "cuts_full": int(full_cuts),
        "cuts_delta": int(delta_cuts),
        "full_bytes": int(full_bytes),
        "delta_bytes": int(delta_bytes),
        "full_bytes_per_cut": round(full_bytes / full_cuts, 1)
        if full_cuts
        else 0.0,
        "delta_bytes_per_cut": round(delta_bytes / delta_cuts, 1)
        if delta_cuts
        else 0.0,
        "epochs_completed": int(telemetry.counter("epochs_completed")),
        "alignment_stall_ms": round(
            telemetry.counter("epoch.alignment_stall_ms"), 3
        ),
        "wall_seconds": round(wall, 3),
    }


def bench_checkpoint_sweep(
    entries: int, rate: float, duration: float, interval: float
) -> dict[str, Any]:
    """Checkpoint-interval x sink-p99 sweep: phase vs barrier cuts.

    Every row runs the same seeded word-count pipeline with the counter
    padded to ``entries`` keys that the workload never writes again, so
    full snapshots serialize O(entries) while the per-interval write set
    stays O(rate * interval).  Rows:

    * ``no_checkpoint`` — interval pushed past the run, the latency
      baseline;
    * ``phase`` / ``phase_frequent`` — classic per-instance phase
      checkpoints at the normal and 10x-frequent interval; every cut is
      a full O(entries) serialize, so the counter's data-path p99
      (``counter_p99_ms``) grows toward the serialize stall;
    * ``barrier`` / ``barrier_frequent`` — epoch-aligned barrier
      snapshots with incremental cuts; after the first full cut each
      epoch ships only the dirty delta, so ``delta_bytes_per_cut``
      tracks the write rate (not ``entries``) and both the data-path
      p99 and the sink p99 stay flat even at the 10x-frequent interval.

    All numbers except ``wall_seconds`` are simulated-time or byte
    counts, hence exact and seeded.
    """
    run = lambda mode, ivl: _run_checkpoint_mode(  # noqa: E731
        mode, ivl, entries, rate, duration
    )
    rows: dict[str, Any] = {
        "no_checkpoint": run("phase", duration * 10.0),
        "phase": run("phase", interval),
        "phase_frequent": run("phase", interval / 10.0),
        "barrier": run("barrier", interval),
        "barrier_frequent": run("barrier", interval / 10.0),
    }
    base = rows["no_checkpoint"]["sink_p99_ms"]
    overhead = {}
    for label in ("phase", "phase_frequent", "barrier", "barrier_frequent"):
        p99 = rows[label]["sink_p99_ms"]
        if base and p99 is not None:
            overhead[label] = round((p99 - base) / base * 100.0, 2)
    rows["entries"] = entries
    rows["p99_overhead_pct"] = overhead
    return rows


def bench_recovery(rate: float, duration: float) -> dict[str, Any]:
    """Simulated-time recovery latency (deterministic) plus the
    wall-clock cost of running the failure schedule batched."""
    fail_at = duration / 2
    system, _query, wall = _run_wordcount(
        rate, duration, batched=True, fail_at=fail_at
    )
    failures = system.metrics.events_of_kind("failure")
    recoveries = system.metrics.events_of_kind("recovery_complete")
    if not failures or not recoveries:
        raise ReproError("recovery benchmark saw no failure/recovery pair")
    return {
        "failed_at": round(failures[0][0], 3),
        "recovered_at": round(recoveries[0][0], 3),
        "sim_recovery_seconds": round(recoveries[0][0] - failures[0][0], 3),
        "wall_seconds": round(wall, 3),
    }


def bench_detection(
    rate: float,
    duration: float,
    thresholds: tuple,
    heartbeat_drop: float,
) -> dict[str, Any]:
    """Phi-threshold sweep: detection latency versus false positives.

    For each ``phi_dead`` threshold two deterministic word-count runs
    are measured (simulated time, exact):

    * **crash** — the counter VM dies mid-run; the row reports how long
      the phi detector took to declare it dead and whether the recovery
      completed;
    * **lossy** — nobody dies, but a fault rule drops a fraction of
      heartbeats for the whole run; every detection in this run is a
      false positive.

    Together the rows trace the detector's latency/false-positive
    tradeoff curve: low thresholds detect fast but get fooled by loss,
    high thresholds tolerate loss but detect late.
    """
    from repro.chaos.plan import TRAFFIC_HEARTBEAT, FaultRule, NetworkFaultPlan
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wordcount import build_word_count_query

    def _system(phi_dead: float):
        query = build_word_count_query(
            rate=rate, window=10.0, vocabulary_size=400, quantum=0.1
        )
        config = SystemConfig()
        config.scaling.enabled = False
        config.fault.detector = "phi"
        config.fault.phi_dead = phi_dead
        config.fault.phi_confirm = min(phi_dead, max(phi_dead / 2.0, 1.0))
        config.fault.phi_suspect = min(1.0, phi_dead / 2.0)
        # Widen the stddev floor to ~0.7x the heartbeat period.  The
        # simulated heartbeat stream is near-perfectly regular, so the
        # default floor makes one lost heartbeat >= 10 sigma of silence:
        # phi saturates and every threshold fires identically.  A floor
        # comparable to the period models real arrival jitter and lets
        # the sweep trace the latency/false-positive tradeoff.
        config.fault.phi_min_stddev = 0.7 * config.fault.heartbeat_interval
        system = StreamProcessingSystem(config)
        system.deploy(query.graph, generators=query.generators)
        return system

    out: dict[str, Any] = {}
    fail_at = duration / 2
    for phi_dead in thresholds:
        crash = _system(phi_dead)
        crash.injector.fail_target_at(lambda: crash.vm_of("counter"), fail_at)
        crash.run(until=duration)
        detections = crash.metrics.events_of_kind("phi_detection")
        recoveries = crash.metrics.events_of_kind("recovery_complete")
        latency = round(detections[0][0] - fail_at, 3) if detections else None

        lossy = _system(phi_dead)
        plan = NetworkFaultPlan(
            [
                FaultRule(
                    drop_rate=heartbeat_drop,
                    kinds=frozenset({TRAFFIC_HEARTBEAT}),
                )
            ],
            seed=0,
        )
        lossy.network.install_fault_plan(plan)
        lossy.run(until=duration)
        assert lossy.phi_detector is not None
        out[f"phi_{phi_dead:g}"] = {
            "phi_dead": phi_dead,
            "detection_latency_s": latency,
            "recovered": bool(recoveries),
            "false_positives": lossy.phi_detector.false_detections,
            "heartbeats_lost": plan.drops_injected,
        }
    return out


def _run_skew(
    exponent: float,
    hot_key_aware: bool,
    rate: float,
    duration: float,
    languages: int,
    sources: int,
    map_parallelism: int,
    max_vms: int,
) -> dict[str, Any]:
    from repro.runtime.system import StreamProcessingSystem
    from repro.workloads.wikipedia import build_wikipedia_topk_query

    # One stripe per language: each language is exactly one key, so a
    # steep Zipf exponent concentrates most of the reduce load on one
    # hashed position — the regime interval splitting cannot relieve.
    bundle, parallelism = build_wikipedia_topk_query(
        rate=rate,
        sources=sources,
        languages=languages,
        stripes=1,
        k=5,
        emit_interval=5.0,
        quantum=0.5,
        zipf_exponent=exponent,
    )
    parallelism[bundle.map_name] = map_parallelism
    config = SystemConfig()
    config.scaling.enabled = True
    config.scaling.max_vms = max_vms
    config.migration.max_chunks = 4
    config.scaling.hot_key_enabled = hot_key_aware
    # The sweep measures scaling *policy*, not provisioning latency:
    # keep enough warm VMs pooled that every permitted operation starts
    # within a handout delay instead of a 90 s provisioning round-trip.
    config.cloud.pool_size = max_vms
    system = StreamProcessingSystem(config)
    system.deploy(
        bundle.graph, parallelism=parallelism, generators=bundle.generators
    )
    start = time.perf_counter()
    system.run(until=duration)
    wall = time.perf_counter() - start

    reduce_name = bundle.reduce_name
    processed = system.metrics.rate(
        f"processed:{reduce_name}", system.config.rate_bin
    ).total()
    reduce_lat = system.metrics.latencies.get(f"latency:{reduce_name}")
    reduce_p99 = (
        reduce_lat.percentile(99, t_min=duration / 2)
        if reduce_lat and len(reduce_lat)
        else None
    )
    sink_lat = system.metrics.latencies.get("latency:sink")
    sink_p99 = (
        sink_lat.percentile(99, t_min=duration / 2)
        if sink_lat and len(sink_lat)
        else None
    )
    # The hot slot's utilisation in the final report window: stale
    # series from retired slots are filtered out by sample time.
    window = 2.0 * system.config.scaling.report_interval
    hot_util = 0.0
    for name, series in system.metrics.time_series.items():
        if not name.startswith(f"util:{reduce_name}[") or not len(series):
            continue
        if series.times[-1] >= duration - window:
            hot_util = max(hot_util, series.values[-1])
    telemetry = system.telemetry
    # Above the scaling threshold the slot can't be relieved by further
    # splitting; at ~1.0 it is saturated outright and falling behind.
    plateaued = hot_util >= config.scaling.threshold
    saturated = hot_util >= 0.995
    return {
        "exponent": exponent,
        "mode": "hot_key_aware" if hot_key_aware else "interval_only",
        "tuples_processed": round(processed, 1),
        "reduce_p99_ms": round(reduce_p99 * 1e3, 3)
        if reduce_p99 is not None
        else None,
        "sink_p99_ms": round(sink_p99 * 1e3, 3)
        if sink_p99 is not None
        else None,
        "hot_slot_final_util": round(hot_util, 4),
        "plateaued": plateaued,
        "saturated": saturated,
        "reduce_parallelism": system.query_manager.parallelism_of(reduce_name),
        "worker_vms": system.worker_vm_count(),
        "splits_completed": system.reconfig.operations_completed,
        "carve_outs": int(telemetry.counter("scaling.hot_key_carveouts")),
        "reabsorbs": int(telemetry.counter("scaling.hot_key_reabsorbs")),
        "splits_skipped_narrow": int(
            telemetry.counter("scaling.split_skipped_narrow")
        ),
        "wall_seconds": round(wall, 3),
    }


def bench_skew_sweep(
    exponents: tuple,
    rate: float,
    duration: float,
    languages: int,
    sources: int,
    map_parallelism: int,
    max_vms: int,
) -> dict[str, Any]:
    """Zipf exponent x {interval-only, hot-key-aware} scaling sweep.

    Every cell runs the same seeded Wikipedia top-k query under a
    capped VM budget.  At low exponents load spreads over many keys and
    both modes behave identically (hot-key detection never fires: no
    key reaches the carve-out share).  At high exponents one language
    dominates: interval-only splitting halves the hot slot's range
    round after round without shedding the dominating key, exhausts the
    budget and *plateaus* — the hot slot's utilisation stays above the
    scaling threshold, the backlog grows and the data-path p99 climbs —
    while the hot-key-aware run carves the dominating key out into a
    dedicated slot and sustains throughput and p99.  All numbers except
    ``wall_seconds`` are simulated-time, hence exact and seeded.
    """
    out: dict[str, Any] = {}
    for exponent in exponents:
        cell: dict[str, Any] = {}
        for label, aware in (
            ("interval_only", False),
            ("hot_key_aware", True),
        ):
            cell[label] = _run_skew(
                exponent,
                aware,
                rate,
                duration,
                languages,
                sources,
                map_parallelism,
                max_vms,
            )
        out[f"zipf_{exponent:g}"] = cell
    return out


def run_bench(preset: str = "small", out: str | None = None) -> dict[str, Any]:
    """Run every benchmark in ``preset`` and write the JSON report."""
    if preset not in PRESETS:
        raise ReproError(
            f"unknown bench preset {preset!r}; expected one of {tuple(PRESETS)}"
        )
    params = PRESETS[preset]
    report: dict[str, Any] = {
        "preset": preset,
        "params": {k: v for k, v in params.items()},
        "results": {
            "kernel": bench_kernel(params["kernel_events"]),
            "throughput": bench_throughput(params["rate"], params["duration"]),
            "dataplane": bench_dataplane(
                params["dataplane_rate"],
                params["dataplane_duration"],
                params["operator_tuples"],
                params["overload_rate"],
                params["overload_duration"],
            ),
            "checkpoint": bench_checkpoint(
                params["state_sizes"], params["touched_keys"]
            ),
            "migration": bench_migration(
                params["migration_entries"], params["migration_chunks"]
            ),
            "backends": bench_backends(
                params["backend_entries"],
                params["backend_hot_entries"],
                params["backend_chunks"],
                params["recovery_duration"],
            ),
            "checkpoint_sweep": bench_checkpoint_sweep(
                params["sweep_entries"],
                params["sweep_rate"],
                params["sweep_duration"],
                params["sweep_interval"],
            ),
            "skew_sweep": bench_skew_sweep(
                params["skew_exponents"],
                params["skew_rate"],
                params["skew_duration"],
                params["skew_languages"],
                params["skew_sources"],
                params["skew_map_parallelism"],
                params["skew_max_vms"],
            ),
        },
    }
    if params["recovery_duration"] > 0:
        report["results"]["recovery"] = bench_recovery(
            rate=250.0, duration=params["recovery_duration"]
        )
    report["results"]["detection"] = bench_detection(
        rate=params["detection_rate"],
        duration=params["detection_duration"],
        thresholds=params["phi_thresholds"],
        heartbeat_drop=params["heartbeat_drop"],
    )
    if out is not None:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        report["out"] = out
    return report


def render_report(report: dict[str, Any]) -> str:
    """Human-readable summary of one bench report."""
    results = report["results"]
    lines = [f"bench preset={report['preset']}"]
    kernel = results["kernel"]
    lines.append(
        f"  kernel: {kernel['events_per_sec']:,.0f} events/s "
        f"({kernel['events']} events in {kernel['wall_seconds']}s)"
    )
    thr = results["throughput"]
    lines.append(
        f"  throughput: unbatched {thr['unbatched']['tuples_per_wall_sec']:,.0f} "
        f"tup/s, batched {thr['batched']['tuples_per_wall_sec']:,.0f} tup/s "
        f"-> {thr['speedup']}x (messages cut {thr['message_reduction']}x)"
    )
    dataplane = results.get("dataplane")
    if dataplane:
        lines.append(
            f"  dataplane: rows {dataplane['rows']['tuples_per_wall_sec']:,.0f} "
            f"tup/s, columnar {dataplane['columnar']['tuples_per_wall_sec']:,.0f} "
            f"tup/s -> {dataplane['columnar_speedup']}x"
        )
        pipe = dataplane["pipeline"]
        lines.append(
            f"  dataplane pipeline: rows {pipe['rows']['tuples_per_wall_sec']:,.0f} "
            f"tup/s, columnar {pipe['columnar']['tuples_per_wall_sec']:,.0f} "
            f"tup/s -> {pipe['speedup']}x end to end"
        )
        for label in ("off", "on"):
            row = dataplane["backpressure"][label]
            lines.append(
                f"  backpressure {label}: peak depth {row['peak_queue_depth']} "
                f"(bound {row['depth_bound']}, bounded={row['bounded']}, "
                f"monotonic={row['monotonic_growth']}), "
                f"shed {row['shed_weight']}, {row['blocks']} blocks"
            )
    for size, row in results["checkpoint"].items():
        lines.append(
            f"  checkpoint n={size}: cow {row['cow_snapshot_ms']}ms vs eager "
            f"{row['eager_copy_ms']}ms ({row['snapshot_speedup']}x); "
            f"touch[{row['touched_keys']}] {row['cow_touch_ms']}ms"
        )
    migration = results.get("migration")
    if migration:
        one = migration["all_at_once"]
        many = migration["chunked"]
        lines.append(
            f"  migration n={migration['entries']}: all-at-once pause "
            f"{one['max_pause_ms']}ms vs {many['chunks_shipped']} chunks "
            f"{many['max_pause_ms']}ms -> {migration['pause_reduction']}x "
            f"shorter stalls (sink p99 {one['sink_p99_ms']}ms -> "
            f"{many['sink_p99_ms']}ms)"
        )
    backends = results.get("backends")
    if backends:
        for kind, row in backends.items():
            recovery = row.get("recovery")
            tail = (
                f", recovery {recovery['sim_recovery_seconds']}s"
                if recovery
                else ""
            )
            lines.append(
                f"  backend {kind}: peak resident "
                f"{row['peak_resident_entries']}/{row['entries']} entries "
                f"(hot bound {row['max_hot_entries']}), "
                f"{row['chunks_shipped']} chunks max pause "
                f"{row['migration_max_pause_ms']}ms, state io "
                f"{row['state_io_seconds']}s{tail}"
            )
    sweep = results.get("checkpoint_sweep")
    if sweep:
        for label in (
            "no_checkpoint",
            "phase",
            "phase_frequent",
            "barrier",
            "barrier_frequent",
        ):
            row = sweep.get(label)
            if not row:
                continue
            overhead = sweep.get("p99_overhead_pct", {}).get(label)
            tail = f" ({overhead:+.1f}% vs baseline)" if overhead is not None else ""
            lines.append(
                f"  ckpt sweep {label}: sink p99 {row['sink_p99_ms']}ms{tail}, "
                f"data-path p99 {row['counter_p99_ms']}ms, "
                f"{row['cuts_full']} full + {row['cuts_delta']} delta cuts, "
                f"delta/cut {row['delta_bytes_per_cut']:,.0f}B "
                f"(full/cut {row['full_bytes_per_cut']:,.0f}B), "
                f"{row['epochs_completed']} epochs"
            )
    skew = results.get("skew_sweep")
    if skew:
        for cell_name, cell in skew.items():
            for mode in ("interval_only", "hot_key_aware"):
                row = cell.get(mode)
                if not row:
                    continue
                lines.append(
                    f"  skew {cell_name} {mode}: "
                    f"{row['tuples_processed']:,.0f} tuples, reduce p99 "
                    f"{row['reduce_p99_ms']}ms, hot slot util "
                    f"{row['hot_slot_final_util']} "
                    f"(plateaued={row['plateaued']}, "
                    f"saturated={row['saturated']}), "
                    f"{row['splits_completed']} ops, "
                    f"{row['carve_outs']} carve-outs on "
                    f"{row['worker_vms']} worker VMs"
                )
    recovery = results.get("recovery")
    if recovery:
        lines.append(
            f"  recovery: {recovery['sim_recovery_seconds']}s sim-time "
            f"(failed {recovery['failed_at']}s, recovered "
            f"{recovery['recovered_at']}s)"
        )
    detection = results.get("detection")
    if detection:
        for key, row in detection.items():
            latency = row["detection_latency_s"]
            shown = f"{latency}s" if latency is not None else "none"
            lines.append(
                f"  detection phi_dead={row['phi_dead']:g}: latency {shown} "
                f"(recovered={row['recovered']}), "
                f"{row['false_positives']} false positives under "
                f"{row['heartbeats_lost']} lost heartbeats"
            )
    return "\n".join(lines)
