"""Shared experiment machinery.

Builders that assemble an SPS around one of the evaluation workloads,
run it under controlled conditions (failure injection, padded state,
fixed seeds) and return the measurements the figure drivers need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.config import STRATEGY_RSM, SystemConfig
from repro.errors import ReproError
from repro.runtime.system import StreamProcessingSystem
from repro.workloads.wordcount import WordCountQuery, build_word_count_query


@dataclass
class FigureResult:
    """A regenerated figure: tabular rows plus optional time series."""

    figure_id: str
    title: str
    headers: list[str]
    rows: list[list[Any]]
    series: dict[str, tuple] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        """Render the figure as aligned text tables and sparklines."""
        from repro.experiments.report import render_table, sparkline

        parts = [render_table(self.headers, self.rows, title=f"{self.figure_id}: {self.title}")]
        for name, (times, values) in self.series.items():
            if len(values):
                parts.append(f"{name}: {sparkline(values)}")
        for note in self.notes:
            parts.append(f"note: {note}")
        return "\n".join(parts)

    def to_csv(self, path: str) -> None:
        """Write the tabular rows as CSV (series go to sibling files).

        ``fig.to_csv("out/fig11.csv")`` writes the rows; each time series
        lands next to it as ``fig11.<series>.csv`` with time,value
        columns — ready for pandas or a plotting tool.
        """
        import csv
        import os
        import re

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(self.headers)
            writer.writerows(self.rows)
        base, _ext = os.path.splitext(path)
        for name, (times, values) in self.series.items():
            slug = re.sub(r"[^a-z0-9]+", "_", name.lower()).strip("_")
            with open(f"{base}.{slug}.csv", "w", newline="") as handle:
                writer = csv.writer(handle)
                writer.writerow(["time", name])
                writer.writerows(zip(times, values))


def default_config(seed: int = 0) -> SystemConfig:
    """A fresh config with paper defaults."""
    config = SystemConfig()
    config.seed = seed
    return config


def pad_counter_state(
    system: StreamProcessingSystem, op_name: str, entries: int
) -> None:
    """Pre-populate a windowed counter's state with ``entries`` entries.

    The paper "synthetically varies the dictionary size" to control
    checkpoint cost (§6.3); padding entries live in a window far in the
    future so they are never flushed and never expire during the run.
    """
    if entries <= 0:
        return
    far_future_window = 10**9
    for index, instance in enumerate(system.instances_of(op_name)):
        share = entries // max(1, len(system.instances_of(op_name)))
        for i in range(share):
            instance.state[f"__pad_{index}_{i}"] = {far_future_window: 1}


@dataclass
class WordCountRun:
    """Everything measured from one word-count run."""

    system: StreamProcessingSystem
    query: WordCountQuery
    recovery_time: float | None = None

    def latency_p(self, q: float, op: str = "counter", t_min: float | None = None) -> float:
        """Weighted latency percentile for one operator (seconds)."""
        reservoir = self.system.metrics.latencies.get(f"latency:{op}")
        if reservoir is None or len(reservoir) == 0:
            return math.nan
        return reservoir.percentile(q, t_min=t_min)

    def recovery_phase_breakdown(self, op: str = "counter") -> dict[str, float]:
        """Per-phase durations (seconds) of the run's last recovery.

        Attributes the Fig. 11-13 recovery time to the reconfiguration
        engine's phases (VM acquisition, state partitioning, transfer,
        restore, replay drain).  Empty when no recovery ran.
        """
        timelines = self.system.metrics.timelines(kind="recovery", op_name=op)
        if not timelines:
            return {}
        breakdown: dict[str, float] = {}
        for span in timelines[-1].spans:
            breakdown[span.phase] = breakdown.get(span.phase, 0.0) + (
                span.duration or 0.0
            )
        return breakdown


def checkpoint_aligned_failure_time(
    interval: float, earliest: float, fraction: float = 0.75
) -> float:
    """A failure instant ``fraction`` of the way through a checkpoint
    period, at least ``earliest`` seconds into the run.

    Keeps the amount of replayed work comparable across checkpoint
    intervals (the paper averages over several runs instead).  Assumes
    checkpoint staggering is disabled, so checkpoints land at multiples
    of ``interval``.
    """
    periods = max(1, math.ceil(earliest / interval))
    return (periods + fraction) * interval


def run_word_count(
    rate: float = 500.0,
    duration: float = 60.0,
    checkpoint_interval: float = 5.0,
    strategy: str = STRATEGY_RSM,
    recovery_parallelism: int = 1,
    fail_at: float | None = None,
    fail_op: str = "counter",
    window: float = 30.0,
    vocabulary_size: int = 2000,
    words_per_sentence: int = 6,
    pad_entries: int = 0,
    scaling_enabled: bool = False,
    seed: int = 0,
    stagger_checkpoints: bool = False,
) -> WordCountRun:
    """Run the §6.2 word-count workload under controlled conditions."""
    query = build_word_count_query(
        rate=rate,
        window=window,
        vocabulary_size=vocabulary_size,
        words_per_sentence=words_per_sentence,
        quantum=0.1,
    )
    config = default_config(seed)
    config.scaling.enabled = scaling_enabled
    config.checkpoint.interval = checkpoint_interval
    config.checkpoint.stagger = stagger_checkpoints
    config.fault.strategy = strategy
    config.fault.recovery_parallelism = recovery_parallelism
    config.fault.buffer_horizon = window
    system = StreamProcessingSystem(config)
    system.deploy(query.graph, generators=query.generators)
    if pad_entries:
        pad_counter_state(system, query.counter_name, pad_entries)
    if fail_at is not None:
        system.injector.fail_target_at(lambda: system.vm_of(fail_op), fail_at)
    system.run(until=duration)
    run = WordCountRun(system, query)
    if fail_at is not None:
        if system.recovery is not None and system.recovery.recovery_durations:
            run.recovery_time = system.recovery.recovery_durations[-1][1]
    return run


def measure_recovery_time(
    rate: float,
    checkpoint_interval: float,
    strategy: str = STRATEGY_RSM,
    recovery_parallelism: int = 1,
    window: float = 30.0,
    repeats: int = 1,
    seed: int = 0,
    settle: float = 20.0,
) -> float:
    """Mean recovery time over ``repeats`` runs (the Fig. 11-13 metric).

    The VM hosting the word counter is killed a fixed fraction into a
    checkpoint period; recovery time runs from the crash until the
    restored operator has re-processed all replayed tuples.
    """
    durations = []
    for r in range(repeats):
        fail_at = checkpoint_aligned_failure_time(
            checkpoint_interval, earliest=max(window + 5.0, 35.0)
        )
        run = run_word_count(
            rate=rate,
            duration=fail_at + checkpoint_interval + settle,
            checkpoint_interval=checkpoint_interval,
            strategy=strategy,
            recovery_parallelism=recovery_parallelism,
            fail_at=fail_at,
            window=window,
            seed=seed + r,
        )
        if run.recovery_time is None:
            raise ReproError(
                f"no recovery recorded (rate={rate}, c={checkpoint_interval}, "
                f"strategy={strategy})"
            )
        durations.append(run.recovery_time)
    return sum(durations) / len(durations)
