"""Exception hierarchy for the repro stream processing system.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Sub-hierarchies mirror the subsystems:
simulation kernel, state management, runtime, scaling and fault tolerance.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class EventError(SimulationError):
    """An event was scheduled or cancelled incorrectly."""


class ClockError(SimulationError):
    """An operation would move simulated time backwards."""


class StateError(ReproError):
    """Base class for operator state management errors."""


class KeySpaceError(StateError):
    """A key interval operation violated key-space invariants."""


class CheckpointError(StateError):
    """Checkpointing, backup or restore of operator state failed."""


class PartitionError(StateError):
    """State partitioning (Algorithm 2) could not be performed."""


class QueryError(ReproError):
    """A query graph is malformed (cycle, missing source/sink, ...)."""


class DeploymentError(ReproError):
    """The deployment manager could not map the query onto VMs."""


class RuntimeStateError(ReproError):
    """An operator instance was driven through an illegal transition."""


class ScaleOutError(ReproError):
    """The fault-tolerant scale-out algorithm (Algorithm 3) failed."""


class RecoveryError(ReproError):
    """Failure recovery could not complete."""


class VMPoolError(ReproError):
    """The VM pool could not satisfy a request."""


class WorkloadError(ReproError):
    """A workload generator was configured or driven incorrectly."""
