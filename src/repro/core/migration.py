"""Unified state movement: the StateMover layer and fluid chunking.

Every path that moves operator state between VMs — the scale-out split,
the scale-in merge, and serial/parallel recovery TRANSFER — ships its
checkpoints through one :class:`StateMover`.  The mover owns the three
concerns those paths used to duplicate:

* **sizing** — serialised bytes come from the single source of truth
  (``SystemConfig.bytes_per_entry`` / ``bytes_per_tuple``);
* **tracing** — every message gets its own ``state.transfer`` span,
  parented under the operation's open phase span, closed on arrival;
* **accounting** — messages ride the network as ``kind="migration"``
  traffic, counted separately from the data and control planes.

On top of the single-message :meth:`StateMover.ship` primitive sit two
composites:

* :meth:`StateMover.transfer` moves a whole checkpoint, optionally cut
  into N sequential wire chunks (``MigrationConfig``), reassembled at
  the destination before the restore callback runs.  This is the
  store-and-forward path used by recovery and by the all-at-once
  scale-out/scale-in transfers: chunking changes the wire schedule and
  the spans, never the restore semantics.
* :meth:`StateMover.plan_fluid_chunks` cuts a migrating key range into
  sub-intervals with roughly equal *entry* counts, for the fluid
  scale-out loop in :mod:`repro.scaling.reconfig` where each chunk is
  extracted, shipped, restored and committed one at a time while the
  source keeps serving the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.config import MigrationConfig
from repro.core.checkpoint import Checkpoint
from repro.core.partition import split_interval_groups
from repro.core.state import KeyInterval, ProcessingState
from repro.core.tuples import stable_hash
from repro.sim.network import KIND_MIGRATION

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.vm import VirtualMachine


@dataclass
class MigrationChunk:
    """One unit of a fluid migration: a key sub-range and its state.

    ``checkpoint`` holds the processing state extracted for
    ``intervals`` (and, on the final chunk only, the source's output
    buffers).  ``index``/``total`` identify the chunk's place in the
    migration; the final chunk's commit retires the source partition.
    """

    index: int
    total: int
    intervals: list[KeyInterval]
    checkpoint: Checkpoint
    #: Flagged-replay tuples expected by the target's post-commit drain.
    expected_replays: int = 0
    #: Simulated time the chunk left the source VM.
    shipped_at: float = 0.0

    @property
    def final(self) -> bool:
        """Whether this is the last chunk of the migration."""
        return self.index == self.total - 1


class StateMover:
    """Ships operator state between VMs for every reconfiguration path."""

    def __init__(self, system: Any) -> None:
        self.system = system
        #: Wire messages shipped (one per chunk).
        self.messages = 0
        #: Logical transfers that were cut into more than one message.
        self.chunked_transfers = 0

    # ---------------------------------------------------------- planning

    def chunk_count(self, entry_count: int, cfg: MigrationConfig) -> int:
        """How many chunks a transfer of ``entry_count`` entries gets.

        ``chunk_entries`` sets a target chunk size, ``max_chunks`` caps
        the count; there is never more than one chunk per entry, and an
        empty transfer is a single (empty) message.
        """
        if entry_count <= 0:
            return 1
        chunks = cfg.max_chunks
        if cfg.chunk_entries is not None:
            chunks = min(chunks, -(-entry_count // cfg.chunk_entries))
        return max(1, min(chunks, entry_count))

    def plan_fluid_chunks(
        self,
        intervals: list[KeyInterval],
        state: ProcessingState,
        cfg: MigrationConfig,
    ) -> list[list[KeyInterval]]:
        """Cut a migrating key range into per-chunk interval groups.

        The observed key positions inside ``intervals`` guide the cut so
        chunks carry roughly equal entry counts (mirroring the guided
        split of Algorithm 2); the returned groups are disjoint, sorted
        and jointly tile ``intervals``.
        """
        # state.keys() covers every tier (a spilled operator's cold
        # entries migrate too); iterating ``entries`` directly would plan
        # chunks from the hot tier alone.
        positions = [
            p
            for p in (stable_hash(key) for key in state.keys())
            if any(p in interval for interval in intervals)
        ]
        chunks = self.chunk_count(len(positions), cfg)
        chunks = min(chunks, sum(interval.width for interval in intervals))
        if chunks <= 1:
            return [list(intervals)]
        return split_interval_groups(intervals, chunks, positions)

    # ---------------------------------------------------------- shipping

    def ship(
        self,
        op: Any,
        src_vm: "VirtualMachine | None",
        dst_vm: "VirtualMachine",
        checkpoint: Checkpoint,
        on_delivered: Callable[..., Any],
        *args: Any,
        chunk_index: int = 0,
        chunk_total: int = 1,
    ) -> None:
        """Ship one checkpoint (or chunk) as a single migration message.

        Opens a ``state.transfer`` span parented under ``op``'s open
        phase span; the span rides the message and closes on arrival,
        after which ``on_delivered(*args)`` runs.  If either endpoint is
        dead at the relevant time the message is dropped and the
        callback never runs — the caller's deadline/abort machinery is
        the recovery path, exactly as for the pre-mover transfers.
        """
        telemetry = self.system.telemetry
        cfg = self.system.config
        size = checkpoint.size_bytes(cfg.bytes_per_entry, cfg.bytes_per_tuple)
        span = telemetry.start_span(
            f"state.transfer:{checkpoint.op_name}",
            kind="transfer",
            parent=telemetry.phase_span(op),
            part=checkpoint.slot_uid,
            bytes=size,
            entries=len(checkpoint.state),
            src_vm=src_vm.vm_id if src_vm is not None else None,
            dst_vm=dst_vm.vm_id,
            chunk=chunk_index,
            chunks=chunk_total,
        )
        self.messages += 1
        self.system.network.send(
            src_vm,
            dst_vm,
            size,
            self._delivered,
            span,
            on_delivered,
            args,
            kind=KIND_MIGRATION,
        )

    def _delivered(
        self, span: Any, on_delivered: Callable[..., Any], args: tuple
    ) -> None:
        self.system.telemetry.end_span(span)
        on_delivered(*args)

    def transfer(
        self,
        op: Any,
        src_vm: "VirtualMachine | None",
        dst_vm: "VirtualMachine",
        checkpoint: Checkpoint,
        on_delivered: Callable[..., Any],
        *args: Any,
        cfg: MigrationConfig | None = None,
    ) -> None:
        """Move a whole checkpoint, chunked on the wire per ``cfg``.

        With one chunk (the default config) this is a single message —
        byte-for-byte the pre-mover behaviour.  With more, the state is
        sliced into equal-entry wire chunks sent store-and-forward (each
        chunk departs when the previous one lands, so the pipe stays
        bounded); ``on_delivered(checkpoint, *args)`` runs once the last
        chunk arrives, with the original checkpoint reassembled intact.
        """
        if cfg is None:
            cfg = self.system.config.migration
        chunks = self.chunk_count(len(checkpoint.state), cfg)
        if chunks <= 1:
            self.ship(op, src_vm, dst_vm, checkpoint, on_delivered, checkpoint, *args)
            return
        slices = _slice_checkpoint(checkpoint, chunks)
        self.chunked_transfers += 1
        self._send_slice(op, src_vm, dst_vm, slices, 0, checkpoint, on_delivered, args)

    def _send_slice(
        self,
        op: Any,
        src_vm: "VirtualMachine | None",
        dst_vm: "VirtualMachine",
        slices: list[Checkpoint],
        index: int,
        checkpoint: Checkpoint,
        on_delivered: Callable[..., Any],
        args: tuple,
    ) -> None:
        if index == len(slices):
            on_delivered(checkpoint, *args)
            return
        self.ship(
            op,
            src_vm,
            dst_vm,
            slices[index],
            self._send_slice,
            op,
            src_vm,
            dst_vm,
            slices,
            index + 1,
            checkpoint,
            on_delivered,
            args,
            chunk_index=index,
            chunk_total=len(slices),
        )


def _slice_checkpoint(checkpoint: Checkpoint, chunks: int) -> list[Checkpoint]:
    """Cut a checkpoint into ``chunks`` wire slices of ~equal entries.

    Slices exist for sizing and tracing only (the reassembled original
    is what gets restored), so entry values are shared, not copied.
    Output buffers ride the final slice, keeping the summed wire bytes
    equal to the unchunked transfer.
    """
    keys = list(checkpoint.state.entries)
    chunks = max(1, min(chunks, len(keys))) if keys else 1
    shared = checkpoint.state.share_all()
    base, extra = divmod(len(keys), chunks)
    slices: list[Checkpoint] = []
    start = 0
    for index in range(chunks):
        count = base + (1 if index < extra else 0)
        state = ProcessingState(
            positions=checkpoint.state.positions,
            out_clock=checkpoint.state.out_clock,
        )
        for key in keys[start : start + count]:
            state.entries[key] = shared[key]
        start += count
        slices.append(
            Checkpoint(
                op_name=checkpoint.op_name,
                slot_uid=checkpoint.slot_uid,
                state=state,
                buffers=checkpoint.buffers if index == chunks - 1 else {},
                taken_at=checkpoint.taken_at,
                seq=checkpoint.seq,
            )
        )
    return slices
