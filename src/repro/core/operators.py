"""Built-in operator library.

Stateless: :class:`MapOperator`, :class:`FilterOperator`,
:class:`FlatMapOperator`.  Stateful: :class:`KeyedCounter`,
:class:`KeyedReducer`, :class:`WindowedKeyedCounter`, :class:`TopKOperator`.
These cover the paper's evaluation queries (word split/count, map/reduce
top-k) and give library users ready-made pieces; the LRB operators live in
:mod:`repro.workloads.lrb.operators`.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.operator import Operator, OperatorContext
from repro.core.window import WindowAccumulator


class MapOperator(Operator):
    """Apply ``fn(key, payload) -> (key, payload)`` to every tuple."""

    def __init__(self, name: str, fn: Callable[[Any, Any], tuple[Any, Any]], **kwargs):
        kwargs.setdefault("stateful", False)
        super().__init__(name, **kwargs)
        self._fn = fn

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        key, payload = self._fn(tup.key, tup.payload)
        ctx.emit(key, payload, weight=tup.weight)


class FilterOperator(Operator):
    """Pass through tuples for which ``predicate(key, payload)`` holds."""

    def __init__(self, name: str, predicate: Callable[[Any, Any], bool], **kwargs):
        kwargs.setdefault("stateful", False)
        super().__init__(name, **kwargs)
        self._predicate = predicate

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        if self._predicate(tup.key, tup.payload):
            ctx.emit(tup.key, tup.payload, weight=tup.weight)


class FlatMapOperator(Operator):
    """Emit zero or more ``(key, payload)`` pairs per input tuple.

    The word splitter of the paper's running example is a flat map from a
    sentence to its words.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Any, Any], list[tuple[Any, Any]]],
        **kwargs,
    ):
        kwargs.setdefault("stateful", False)
        super().__init__(name, **kwargs)
        self._fn = fn

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        for key, payload in self._fn(tup.key, tup.payload):
            ctx.emit(key, payload, weight=tup.weight)


class KeyedCounter(Operator):
    """Maintain a running count per key; emits nothing.

    The simplest possible stateful operator — its entire value is the
    state the SPS checkpoints, partitions and restores.
    """

    def __init__(self, name: str, **kwargs):
        kwargs.setdefault("stateful", True)
        super().__init__(name, **kwargs)

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        ctx.state[tup.key] = ctx.state.get(tup.key, 0) + tup.weight

    def merge_values(self, left: int, right: int) -> int:
        return left + right


class KeyedReducer(Operator):
    """Fold payloads per key with ``reduce_fn(acc, payload, weight)``."""

    def __init__(
        self,
        name: str,
        reduce_fn: Callable[[Any, Any, int], Any],
        zero: Callable[[], Any],
        **kwargs,
    ):
        kwargs.setdefault("stateful", True)
        super().__init__(name, **kwargs)
        self._reduce = reduce_fn
        self._zero = zero

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        acc = ctx.state.get(tup.key)
        if acc is None:
            acc = self._zero()
        ctx.state[tup.key] = self._reduce(acc, tup.payload, tup.weight)


class WindowedKeyedCounter(Operator):
    """Per-key frequency counts over tumbling windows (§6.2's word count).

    Windows are assigned by *event time* (the tuple's creation time at the
    source), so replayed tuples land in their original windows and window
    contents are independent of processing delays — this is what makes
    "recovery does not affect query results" hold exactly.  A window is
    flushed downstream as ``(key, (window_index, count))`` once it has
    been closed for at least ``grace`` seconds, leaving room for recovery
    replays to complete.

    State value for key *k*: ``{window_index: count}``.
    """

    def __init__(
        self, name: str, window: float = 30.0, grace: float = 10.0, **kwargs
    ):
        kwargs.setdefault("stateful", True)
        kwargs.setdefault("timer_interval", window)
        super().__init__(name, **kwargs)
        self.window = window
        self.grace = grace
        self._acc = WindowAccumulator(
            window, add=lambda acc, _value, weight: acc + weight, zero=lambda: 0
        )

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        buckets = ctx.state.setdefault(tup.key, {})
        self._acc.accumulate(buckets, tup.created_at, None, tup.weight)

    def on_timer(self, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        empty_keys = []
        for key, buckets in ctx.state.items():
            if not isinstance(buckets, dict):
                continue
            for index, count in self._acc.flush_closed(buckets, ctx.now - self.grace):
                ctx.emit(key, (index, count))
            if not buckets:
                empty_keys.append(key)
        for key in empty_keys:
            ctx.state.pop(key)

    def merge_values(self, left: dict, right: dict) -> dict:
        merged = dict(left)
        for index, count in right.items():
            merged[index] = merged.get(index, 0) + count
        return merged


class TopKOperator(Operator):
    """Maintain per-key counts and periodically emit the global top-k.

    This is the stateful reducer of the paper's map/reduce-style query
    over Wikipedia data: it keeps a frequency dictionary of visited
    language versions and every ``emit_interval`` emits the ranking.
    When the operator is partitioned, each partition emits a partial
    ranking and the sink merges them (§6.1: "we use the sink to aggregate
    the partial results").
    """

    def __init__(
        self,
        name: str,
        k: int = 10,
        emit_interval: float = 30.0,
        **kwargs,
    ):
        kwargs.setdefault("stateful", True)
        kwargs.setdefault("timer_interval", emit_interval)
        super().__init__(name, **kwargs)
        self.k = k

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        ctx.state[tup.key] = ctx.state.get(tup.key, 0) + tup.weight

    def on_timer(self, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        ranked = sorted(ctx.state.items(), key=lambda kv: (-kv[1], str(kv[0])))
        top = ranked[: self.k]
        if top:
            ctx.emit("topk", tuple(top))

    def merge_values(self, left: int, right: int) -> int:
        return left + right


def merge_topk(partials: list[tuple], k: int) -> list[tuple[Any, int]]:
    """Merge partial top-k rankings from partitioned :class:`TopKOperator`s.

    Partial rankings are per-partition and key-disjoint, so summing is not
    needed — just re-rank the union.  Used by sinks.
    """
    combined: dict[Any, int] = {}
    for partial in partials:
        for key, count in partial:
            if combined.get(key, -1) < count:
                combined[key] = count
    ranked = sorted(combined.items(), key=lambda kv: (-kv[1], str(kv[0])))
    return ranked[:k]
