"""Built-in operator library.

Stateless: :class:`MapOperator`, :class:`FilterOperator`,
:class:`FlatMapOperator`.  Stateful: :class:`KeyedCounter`,
:class:`KeyedReducer`, :class:`WindowedKeyedCounter`, :class:`TopKOperator`.
These cover the paper's evaluation queries (word split/count, map/reduce
top-k) and give library users ready-made pieces; the LRB operators live in
:mod:`repro.workloads.lrb.operators`.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.core.operator import Operator, OperatorContext
from repro.core.window import WindowAccumulator


def _group_weights(block) -> dict[Any, int]:
    """Sum row weights per key, preserving first-seen key order."""
    grouped: dict[Any, int] = {}
    get = grouped.get
    for key, weight in zip(block.keys, block.weight):
        grouped[key] = get(key, 0) + weight
    return grouped


def _add_count(current, weight):
    """``bulk_apply`` callback: running integer count per key."""
    return weight if current is None else current + weight


class MapOperator(Operator):
    """Apply ``fn(key, payload) -> (key, payload)`` to every tuple."""

    def __init__(self, name: str, fn: Callable[[Any, Any], tuple[Any, Any]], **kwargs):
        kwargs.setdefault("stateful", False)
        super().__init__(name, **kwargs)
        self._fn = fn

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        key, payload = self._fn(tup.key, tup.payload)
        ctx.emit(key, payload, weight=tup.weight)

    def process_block(self, block, ctx: OperatorContext) -> bool:
        fn = self._fn
        emit = ctx.emit
        for key, payload, weight, created_at in zip(
            block.keys, block.payloads, block.weight, block.created_at
        ):
            out_key, out_payload = fn(key, payload)
            emit(out_key, out_payload, weight=weight, created_at=created_at)
        return True


class FilterOperator(Operator):
    """Pass through tuples for which ``predicate(key, payload)`` holds."""

    def __init__(self, name: str, predicate: Callable[[Any, Any], bool], **kwargs):
        kwargs.setdefault("stateful", False)
        super().__init__(name, **kwargs)
        self._predicate = predicate

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        if self._predicate(tup.key, tup.payload):
            ctx.emit(tup.key, tup.payload, weight=tup.weight)

    def process_block(self, block, ctx: OperatorContext) -> bool:
        predicate = self._predicate
        emit = ctx.emit
        for key, payload, weight, created_at in zip(
            block.keys, block.payloads, block.weight, block.created_at
        ):
            if predicate(key, payload):
                emit(key, payload, weight=weight, created_at=created_at)
        return True


class FlatMapOperator(Operator):
    """Emit zero or more ``(key, payload)`` pairs per input tuple.

    The word splitter of the paper's running example is a flat map from a
    sentence to its words.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Any, Any], list[tuple[Any, Any]]],
        **kwargs,
    ):
        kwargs.setdefault("stateful", False)
        super().__init__(name, **kwargs)
        self._fn = fn

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        for key, payload in self._fn(tup.key, tup.payload):
            ctx.emit(key, payload, weight=tup.weight)

    def process_block(self, block, ctx: OperatorContext) -> bool:
        fn = self._fn
        emit = ctx.emit
        for key, payload, weight, created_at in zip(
            block.keys, block.payloads, block.weight, block.created_at
        ):
            for out_key, out_payload in fn(key, payload):
                emit(out_key, out_payload, weight=weight, created_at=created_at)
        return True


class KeyedCounter(Operator):
    """Maintain a running count per key; emits nothing.

    The simplest possible stateful operator — its entire value is the
    state the SPS checkpoints, partitions and restores.
    """

    def __init__(self, name: str, **kwargs):
        kwargs.setdefault("stateful", True)
        super().__init__(name, **kwargs)

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        ctx.state[tup.key] = ctx.state.get(tup.key, 0) + tup.weight

    def process_block(self, block, ctx: OperatorContext) -> bool:
        state = ctx.state
        assert state is not None
        state.bulk_apply(_group_weights(block), _add_count)
        return True

    def merge_values(self, left: int, right: int) -> int:
        return left + right


class KeyedReducer(Operator):
    """Fold payloads per key with ``reduce_fn(acc, payload, weight)``."""

    def __init__(
        self,
        name: str,
        reduce_fn: Callable[[Any, Any, int], Any],
        zero: Callable[[], Any],
        **kwargs,
    ):
        kwargs.setdefault("stateful", True)
        super().__init__(name, **kwargs)
        self._reduce = reduce_fn
        self._zero = zero

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        acc = ctx.state.get(tup.key)
        if acc is None:
            acc = self._zero()
        ctx.state[tup.key] = self._reduce(acc, tup.payload, tup.weight)

    def process_block(self, block, ctx: OperatorContext) -> bool:
        state = ctx.state
        assert state is not None
        reduce_fn = self._reduce
        zero = self._zero
        # Group rows per key in row order: the fold per key is identical
        # to the per-row path, with one state read/write per distinct key.
        grouped: dict[Any, list[int]] = {}
        for i, key in enumerate(block.keys):
            grouped.setdefault(key, []).append(i)
        payloads = block.payloads
        weights = block.weight

        def fold(acc, rows):
            if acc is None:
                acc = zero()
            for i in rows:
                acc = reduce_fn(acc, payloads[i], weights[i])
            return acc

        state.bulk_apply(grouped, fold)
        return True


class WindowedKeyedCounter(Operator):
    """Per-key frequency counts over tumbling windows (§6.2's word count).

    Windows are assigned by *event time* (the tuple's creation time at the
    source), so replayed tuples land in their original windows and window
    contents are independent of processing delays — this is what makes
    "recovery does not affect query results" hold exactly.  A window is
    flushed downstream as ``(key, (window_index, count))`` once it has
    been closed for at least ``grace`` seconds, leaving room for recovery
    replays to complete.

    State value for key *k*: ``{window_index: count}``.
    """

    def __init__(
        self, name: str, window: float = 30.0, grace: float = 10.0, **kwargs
    ):
        kwargs.setdefault("stateful", True)
        kwargs.setdefault("timer_interval", window)
        super().__init__(name, **kwargs)
        self.window = window
        self.grace = grace
        self._acc = WindowAccumulator(
            window, add=lambda acc, _value, weight: acc + weight, zero=lambda: 0
        )

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        buckets = ctx.state.setdefault(tup.key, {})
        self._acc.accumulate(buckets, tup.created_at, None, tup.weight)

    def process_block(self, block, ctx: OperatorContext) -> bool:
        state = ctx.state
        assert state is not None
        width = self.window
        floor = math.floor
        created = block.created_at
        if not len(created):
            return True
        # Event times cluster: a block's rows almost always share one
        # tumbling window, in which case grouping per (key, window) buys
        # nothing (block rows are mostly distinct keys) and the fused
        # single-pass bucket add applies the whole column directly.
        index = int(floor(created[0] / width))
        lo = index * width
        hi = lo + width
        if lo <= min(created) and max(created) < hi:
            state.bulk_bucket_add(index, block.keys, block.weight)
            return True
        # Window-boundary block: group (key, window) weight sums first —
        # the accumulator add is plain weight addition, so bulk-merging
        # the sums produces the same buckets as the per-row path with
        # one state access per key.  The current window's span is
        # cached; the index (same floor expression as ``window_index``)
        # is only recomputed when a row's event time leaves it.
        grouped: dict[Any, dict[int, int]] = {}
        get = grouped.get
        for key, weight, created_at in zip(block.keys, block.weight, created):
            if not lo <= created_at < hi:
                index = int(floor(created_at / width))
                lo = index * width
                hi = lo + width
            buckets = get(key)
            if buckets is None:
                grouped[key] = {index: weight}
            else:
                buckets[index] = buckets.get(index, 0) + weight
        state.bulk_merge_buckets(grouped)
        return True

    def on_timer(self, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        empty_keys = []
        for key, buckets in ctx.state.items():
            if not isinstance(buckets, dict):
                continue
            for index, count in self._acc.flush_closed(buckets, ctx.now - self.grace):
                ctx.emit(key, (index, count))
            if not buckets:
                empty_keys.append(key)
        for key in empty_keys:
            ctx.state.pop(key)

    def merge_values(self, left: dict, right: dict) -> dict:
        merged = dict(left)
        for index, count in right.items():
            merged[index] = merged.get(index, 0) + count
        return merged


class TopKOperator(Operator):
    """Maintain per-key counts and periodically emit the global top-k.

    This is the stateful reducer of the paper's map/reduce-style query
    over Wikipedia data: it keeps a frequency dictionary of visited
    language versions and every ``emit_interval`` emits the ranking.
    When the operator is partitioned, each partition emits a partial
    ranking and the sink merges them (§6.1: "we use the sink to aggregate
    the partial results").
    """

    def __init__(
        self,
        name: str,
        k: int = 10,
        emit_interval: float = 30.0,
        **kwargs,
    ):
        kwargs.setdefault("stateful", True)
        kwargs.setdefault("timer_interval", emit_interval)
        super().__init__(name, **kwargs)
        self.k = k

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        ctx.state[tup.key] = ctx.state.get(tup.key, 0) + tup.weight

    def process_block(self, block, ctx: OperatorContext) -> bool:
        state = ctx.state
        assert state is not None
        state.bulk_apply(_group_weights(block), _add_count)
        return True

    def on_timer(self, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        ranked = sorted(ctx.state.items(), key=lambda kv: (-kv[1], str(kv[0])))
        top = ranked[: self.k]
        if top:
            ctx.emit("topk", tuple(top))

    def merge_values(self, left: int, right: int) -> int:
        return left + right


class FusedStatelessChain(Operator):
    """Fuse a chain of stateless row transforms into one operator.

    ``stages`` are callables ``fn(key, payload)`` returning ``None`` to
    drop the row, a ``(key, payload)`` pair to continue with one row, or
    a list of pairs to fan out.  Deploying a fused chain collapses what
    would be N operators (N network hops, N admissions) into a single
    per-row — or, on the columnar plane, single per-block — pass.
    """

    def __init__(self, name: str, stages: list[Callable[[Any, Any], Any]], **kwargs):
        if not stages:
            raise ValueError("FusedStatelessChain needs at least one stage")
        kwargs.setdefault("stateful", False)
        super().__init__(name, **kwargs)
        self._stages = list(stages)

    def _apply(self, key: Any, payload: Any) -> list[tuple[Any, Any]]:
        rows = [(key, payload)]
        for stage in self._stages:
            next_rows = []
            for row_key, row_payload in rows:
                out = stage(row_key, row_payload)
                if out is None:
                    continue
                if isinstance(out, list):
                    next_rows.extend(out)
                else:
                    next_rows.append(out)
            rows = next_rows
            if not rows:
                break
        return rows

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        for key, payload in self._apply(tup.key, tup.payload):
            ctx.emit(key, payload, weight=tup.weight)

    def process_block(self, block, ctx: OperatorContext) -> bool:
        apply = self._apply
        emit = ctx.emit
        for key, payload, weight, created_at in zip(
            block.keys, block.payloads, block.weight, block.created_at
        ):
            for out_key, out_payload in apply(key, payload):
                emit(out_key, out_payload, weight=weight, created_at=created_at)
        return True


def merge_topk(partials: list[tuple], k: int) -> list[tuple[Any, int]]:
    """Merge partial top-k rankings from partitioned :class:`TopKOperator`s.

    Partial rankings are per-partition and key-disjoint, so summing is not
    needed — just re-rank the union.  Used by sinks.
    """
    combined: dict[Any, int] = {}
    for partial in partials:
        for key, count in partial:
            if combined.get(key, -1) < count:
                combined[key] = count
    ranked = sorted(combined.items(), key=lambda kv: (-kv[1], str(kv[0])))
    return ranked[:k]
