"""Operator model (§2.2).

An :class:`Operator` is the *logical* definition: a deterministic function
over input tuples with access to keyed processing state.  The physical
realisation — one or more partitioned instances on VMs — lives in
:mod:`repro.runtime.instance`; the same :class:`Operator` object is shared
by all of its partitions, so implementations must keep all mutable data in
``ctx.state`` (that is the whole point of externalised state).

Operator semantics contract (what makes state partitioning correct):

* processing a tuple with key *k* may only read/write state entries whose
  key hashes into the operator partition's key intervals — in practice,
  only entry ``k`` itself or entries derived from it with the same hash
  (the word-count operator keyed by word, for example, touches entry
  ``word`` only);
* operators are deterministic and have no externally visible side effects
  beyond emitted tuples.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.state import ProcessingState
from repro.errors import ConfigurationError


class OperatorContext:
    """Everything an operator implementation may touch while processing.

    The runtime instance provides a concrete context; tests can build one
    directly for driving operators in isolation.
    """

    def __init__(
        self,
        state: ProcessingState | None,
        emit: Callable[..., None],
        now: float = 0.0,
    ) -> None:
        self.state = state
        self._emit = emit
        self.now = now

    def emit(
        self,
        key: Any,
        payload: Any = None,
        weight: int = 1,
        created_at: float | None = None,
        to: str | None = None,
    ) -> None:
        """Emit an output tuple.

        ``created_at`` defaults to the creation time of the tuple being
        processed (preserving end-to-end latency lineage); timer-triggered
        emissions default to the current simulated time.  ``to`` restricts
        the emission to one named downstream operator (type-based routing,
        as used by the LRB forwarder); by default the tuple goes to every
        downstream operator.
        """
        self._emit(key, payload, weight, created_at, to)


class Operator:
    """A logical stream operator.

    Parameters
    ----------
    name:
        Unique name within the query graph.
    stateful:
        Whether the operator keeps processing state.  Stateless operators
        have ``θ = ∅`` and recover trivially.
    cost_per_tuple:
        CPU-seconds of work to process one (unit-weight) tuple; this is
        what creates compute bottlenecks.
    state_bytes_per_entry:
        Approximate serialised size of one state entry, used for
        checkpoint CPU/network costs.
    timer_interval:
        If set, ``on_timer`` fires this often on every partition (used by
        windowed operators to flush).
    measure_latency:
        Record end-to-end tuple latency when this operator finishes
        processing a tuple (sinks default to True).
    """

    def __init__(
        self,
        name: str,
        stateful: bool = False,
        cost_per_tuple: float = 10e-6,
        state_bytes_per_entry: float = 64.0,
        timer_interval: float | None = None,
        measure_latency: bool = False,
    ) -> None:
        if not name:
            raise ConfigurationError("operator name must be non-empty")
        if cost_per_tuple < 0:
            raise ConfigurationError(f"cost_per_tuple must be >= 0: {cost_per_tuple}")
        if timer_interval is not None and timer_interval <= 0:
            raise ConfigurationError(
                f"timer_interval must be positive: {timer_interval}"
            )
        self.name = name
        self.stateful = stateful
        self.cost_per_tuple = cost_per_tuple
        self.state_bytes_per_entry = state_bytes_per_entry
        self.timer_interval = timer_interval
        self.measure_latency = measure_latency

    # ---------------------------------------------------------------- hooks

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        """Process one input tuple.  Must be overridden."""
        raise NotImplementedError

    def process_block(self, block, ctx: OperatorContext) -> bool:
        """Process a whole :class:`TupleBlock` in one vectorized pass.

        Return ``True`` when the block was consumed; return ``False`` to
        opt out, and the runtime falls back to row-at-a-time
        :meth:`on_tuple` over the same rows (the default for operators
        without a block kernel — joins, the LRB model).  Kernel
        implementations must pass ``created_at`` explicitly on every
        ``ctx.emit`` (there is no per-row "current input" to inherit
        lineage from) and must produce exactly the state transitions and
        emissions of the per-row path, in row order per key.
        """
        return False

    def on_timer(self, ctx: OperatorContext) -> None:
        """Periodic hook for windowed operators; default does nothing."""

    def initial_state(self) -> ProcessingState:
        """Fresh processing state for a new (unrestored) partition."""
        return ProcessingState()

    def merge_values(self, left: Any, right: Any) -> Any:
        """Combine two state values for the same key during scale in.

        Correct partitioning keeps keys disjoint, so this is only needed
        when merging partitions that both initialised a default entry.
        """
        raise NotImplementedError(
            f"operator {self.name} does not define merge_values"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "stateful" if self.stateful else "stateless"
        return f"{type(self).__name__}({self.name!r}, {kind})"


class LambdaOperator(Operator):
    """A stateless operator defined by a plain function.

    ``fn(tup, ctx)`` is invoked per tuple; convenient for tests and small
    examples.
    """

    def __init__(self, name: str, fn: Callable[[Any, OperatorContext], None], **kwargs):
        kwargs.setdefault("stateful", False)
        super().__init__(name, **kwargs)
        self._fn = fn

    def on_tuple(self, tup, ctx: OperatorContext) -> None:
        self._fn(tup, ctx)
