"""Checkpoints of operator state (§3.2, Algorithm 1).

A :class:`Checkpoint` is the value produced by ``checkpoint-state(o)``:
a consistent snapshot of the processing state θ, the timestamp vector τ
of the most recent input tuples reflected in it, the buffer state β, and
the operator's output clock.  Checkpoints are shipped to an upstream VM's
backup store and later partitioned (scale out) or restored (recovery).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.state import KeyInterval, OutputBuffer, ProcessingState, stable_hash
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spill import ExternalStateStore


@dataclass
class Checkpoint:
    """A consistent snapshot of one operator slot's externalised state.

    A checkpoint is normally *full*.  With incremental checkpointing
    (§3.2, [17]) it may instead be a *delta*: ``state`` then carries only
    the entries touched since the base checkpoint ``base_seq`` (plus the
    full τ vector, clock and buffers, which are cheap), and
    ``deleted_keys`` the entries removed.  Backup stores materialise
    deltas on arrival, so everything downstream of the store — restore,
    partitioning, recovery — only ever sees full checkpoints.
    """

    op_name: str
    slot_uid: int
    state: ProcessingState
    buffers: dict[str, OutputBuffer] = field(default_factory=dict)
    taken_at: float = 0.0
    seq: int = 0
    incremental: bool = False
    base_seq: int = 0
    deleted_keys: frozenset = frozenset()

    @property
    def positions(self) -> dict[int, int]:
        """The τ vector: last reflected input timestamp per connection."""
        return self.state.positions

    @property
    def out_clock(self) -> int:
        return self.state.out_clock

    def entry_count(self) -> int:
        """Number of processing-state entries in the snapshot."""
        return len(self.state)

    def size_bytes(self, bytes_per_entry: float, bytes_per_tuple: float) -> float:
        """Approximate serialised size for network transfer cost.

        Byte-per-entry/-tuple constants come from
        ``SystemConfig.bytes_per_entry`` / ``bytes_per_tuple`` so the
        transfer-cost model and chunk sizing share one source of truth.
        """
        buffered = sum(b.tuple_count() for b in self.buffers.values())
        return self.state.estimated_bytes(bytes_per_entry) + buffered * bytes_per_tuple


def materialize_increment(base: Checkpoint, delta: Checkpoint) -> Checkpoint:
    """Apply a delta checkpoint to its base, yielding a full checkpoint.

    Raises :class:`CheckpointError` when the delta does not chain onto the
    base (the owner must then fall back to a full checkpoint).
    """
    if not delta.incremental:
        raise CheckpointError("materialize_increment called with a full checkpoint")
    if base.slot_uid != delta.slot_uid or base.op_name != delta.op_name:
        raise CheckpointError(
            f"delta for {delta.op_name}/{delta.slot_uid} does not match base "
            f"{base.op_name}/{base.slot_uid}"
        )
    if base.incremental:
        raise CheckpointError("base checkpoint is itself a delta")
    if base.seq != delta.base_seq:
        raise CheckpointError(
            f"delta chains onto seq {delta.base_seq}, store holds {base.seq}"
        )
    entries = dict(base.state.entries)
    entries.update(delta.state.entries)
    for key in delta.deleted_keys:
        entries.pop(key, None)
    merged = ProcessingState(
        entries, positions=delta.positions, out_clock=delta.out_clock
    )
    return Checkpoint(
        op_name=delta.op_name,
        slot_uid=delta.slot_uid,
        state=merged,
        buffers=delta.buffers,
        taken_at=delta.taken_at,
        seq=delta.seq,
    )


def from_external_store(
    store: "ExternalStateStore",
    op_name: str,
    slot_uid: int,
    intervals: list[KeyInterval] | None = None,
    taken_at: float = 0.0,
) -> Checkpoint | None:
    """Synthesise a restorable checkpoint from the external state tier.

    The recovery source of last resort: when the failed slot's backup VM
    died too, its last flushed cut still lives in the external store.
    The cut's τ vector, output clock and seq come from the flush
    metadata, so the synthesised checkpoint replays and dedups exactly
    like one retrieved from a backup store.  ``intervals`` restricts the
    restored entries to the slot's own key range (other partitions of
    the operator persist into the same namespace).  Output buffers are
    not persisted externally — the restored instance starts with empty
    β, which is safe under the paper's single-failure-at-a-time scope.

    Returns ``None`` when the slot never flushed a cut.
    """
    meta = store.load_meta(op_name, slot_uid)
    if meta is None:
        return None
    positions, out_clock, seq = meta
    entries = store.restore_all(op_name)
    if intervals is not None:
        entries = {
            key: value
            for key, value in entries.items()
            if any(stable_hash(key) in interval for interval in intervals)
        }
    state = ProcessingState(entries, positions=positions, out_clock=out_clock)
    return Checkpoint(
        op_name=op_name,
        slot_uid=slot_uid,
        state=state,
        taken_at=taken_at,
        seq=seq,
    )


class BackupStore:
    """Backed-up checkpoints held on one VM (the ``backup(o)`` role).

    In the paper the backup of operator *o* lives with one of *o*'s
    upstream operators, selected by ``hash(id(o)) mod |up(o)|``; this class
    is the container on that upstream VM.  It dies with the VM.
    """

    def __init__(self) -> None:
        self._checkpoints: dict[int, Checkpoint] = {}

    def store(self, checkpoint: Checkpoint) -> None:
        """store-backup: keep the most recent checkpoint per owner slot."""
        existing = self._checkpoints.get(checkpoint.slot_uid)
        if existing is not None and existing.seq > checkpoint.seq:
            raise CheckpointError(
                f"stale checkpoint seq {checkpoint.seq} for slot "
                f"{checkpoint.slot_uid} (have {existing.seq})"
            )
        self._checkpoints[checkpoint.slot_uid] = checkpoint

    def retrieve(self, slot_uid: int) -> Checkpoint:
        """retrieve-backup: fetch the checkpoint for ``slot_uid``."""
        checkpoint = self._checkpoints.get(slot_uid)
        if checkpoint is None:
            raise CheckpointError(f"no backup for slot {slot_uid}")
        return checkpoint

    def has(self, slot_uid: int) -> bool:
        """Whether a backup exists for ``slot_uid``."""
        return slot_uid in self._checkpoints

    def delete(self, slot_uid: int) -> None:
        """delete-backup: release a superseded backup (Algorithm 1 line 6)."""
        self._checkpoints.pop(slot_uid, None)

    def owners(self) -> list[int]:
        """Slot uids with a backup in this store."""
        return list(self._checkpoints)

    def __len__(self) -> int:
        return len(self._checkpoints)
