"""Checkpoints of operator state (§3.2, Algorithm 1).

A :class:`Checkpoint` is the value produced by ``checkpoint-state(o)``:
a consistent snapshot of the processing state θ, the timestamp vector τ
of the most recent input tuples reflected in it, the buffer state β, and
the operator's output clock.  Checkpoints are shipped to an upstream VM's
backup store and later partitioned (scale out) or restored (recovery).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.config import CHECKPOINT_MODE_BARRIER
from repro.core.state import KeyInterval, OutputBuffer, ProcessingState, stable_hash
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.spill import ExternalStateStore


@dataclass
class Checkpoint:
    """A consistent snapshot of one operator slot's externalised state.

    A checkpoint is normally *full*.  With incremental checkpointing
    (§3.2, [17]) it may instead be a *delta*: ``state`` then carries only
    the entries touched since the base checkpoint ``base_seq`` (plus the
    full τ vector, clock and buffers, which are cheap), and
    ``deleted_keys`` the entries removed.  Backup stores materialise
    deltas on arrival, so everything downstream of the store — restore,
    partitioning, recovery — only ever sees full checkpoints.
    """

    op_name: str
    slot_uid: int
    state: ProcessingState
    buffers: dict[str, OutputBuffer] = field(default_factory=dict)
    taken_at: float = 0.0
    seq: int = 0
    incremental: bool = False
    base_seq: int = 0
    deleted_keys: frozenset = frozenset()

    @property
    def positions(self) -> dict[int, int]:
        """The τ vector: last reflected input timestamp per connection."""
        return self.state.positions

    @property
    def out_clock(self) -> int:
        return self.state.out_clock

    def entry_count(self) -> int:
        """Number of processing-state entries in the snapshot."""
        return len(self.state)

    def size_bytes(self, bytes_per_entry: float, bytes_per_tuple: float) -> float:
        """Approximate serialised size for network transfer cost.

        Byte-per-entry/-tuple constants come from
        ``SystemConfig.bytes_per_entry`` / ``bytes_per_tuple`` so the
        transfer-cost model and chunk sizing share one source of truth.
        """
        buffered = sum(b.tuple_count() for b in self.buffers.values())
        return self.state.estimated_bytes(bytes_per_entry) + buffered * bytes_per_tuple


class EpochCut:
    """One operator slot's state cut for one snapshot epoch.

    The descriptor every checkpoint producer hands to the
    :class:`Checkpointer` and every consumer (``StateBackend.on_checkpoint``,
    backup shipment, recovery) receives.  It wraps the raw
    :class:`Checkpoint` payload and carries the coordination context the
    payload itself does not know:

    ``epoch``
        The barrier-snapshot epoch this cut belongs to (0 for phase-mode
        and out-of-band cuts, which are not epoch-aligned).
    ``fence_epoch``
        The cutting slot's PR 7 fencing epoch, stamped on the shipment so
        a fenced (condemned) zombie's cuts are rejected at the store.
    ``positions`` (τ) / ``out_clock`` / ``fence_floor``
        Delegated from the payload; ``fence_floor`` is the committed-prefix
        floor a recovery installing this cut must pass to ``fence_slot``.

    Constructing an ``EpochCut`` directly from ``Checkpoint`` field
    keywords (``EpochCut(op_name=..., state=...)``) is supported as a
    deprecated alias for one release and warns.
    """

    __slots__ = ("checkpoint", "epoch", "fence_epoch")

    _LEGACY_FIELDS = (
        "op_name",
        "slot_uid",
        "state",
        "buffers",
        "taken_at",
        "seq",
        "incremental",
        "base_seq",
        "deleted_keys",
    )

    def __init__(
        self,
        checkpoint: Checkpoint | None = None,
        *,
        epoch: int = 0,
        fence_epoch: int = 0,
        **legacy: Any,
    ) -> None:
        if legacy:
            unknown = set(legacy) - set(self._LEGACY_FIELDS)
            if unknown:
                raise TypeError(
                    f"EpochCut got unexpected keyword(s) {sorted(unknown)}"
                )
            if checkpoint is not None:
                raise TypeError(
                    "pass either a checkpoint or legacy Checkpoint fields, not both"
                )
            warnings.warn(
                "constructing EpochCut from Checkpoint field keywords is "
                "deprecated; pass EpochCut(Checkpoint(...), epoch=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            checkpoint = Checkpoint(**legacy)
        if checkpoint is None:
            raise TypeError("EpochCut requires a Checkpoint payload")
        self.checkpoint = checkpoint
        self.epoch = epoch
        self.fence_epoch = fence_epoch

    # -- delegated payload attributes ----------------------------------
    @property
    def op_name(self) -> str:
        return self.checkpoint.op_name

    @property
    def slot_uid(self) -> int:
        return self.checkpoint.slot_uid

    @property
    def state(self) -> ProcessingState:
        return self.checkpoint.state

    @property
    def buffers(self) -> dict[str, OutputBuffer]:
        return self.checkpoint.buffers

    @property
    def taken_at(self) -> float:
        return self.checkpoint.taken_at

    @property
    def seq(self) -> int:
        return self.checkpoint.seq

    @property
    def incremental(self) -> bool:
        return self.checkpoint.incremental

    @property
    def base_seq(self) -> int:
        return self.checkpoint.base_seq

    @property
    def deleted_keys(self) -> frozenset:
        return self.checkpoint.deleted_keys

    @property
    def positions(self) -> dict[int, int]:
        """The τ vector: last reflected input timestamp per connection."""
        return self.checkpoint.positions

    @property
    def out_clock(self) -> int:
        return self.checkpoint.out_clock

    @property
    def fence_floor(self) -> int:
        """Committed-prefix floor for ``fence_slot`` when restoring this cut."""
        return self.checkpoint.out_clock

    def entry_count(self) -> int:
        return self.checkpoint.entry_count()

    def size_bytes(self, bytes_per_entry: float, bytes_per_tuple: float) -> float:
        return self.checkpoint.size_bytes(bytes_per_entry, bytes_per_tuple)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"EpochCut(epoch={self.epoch}, op={self.op_name!r}, "
            f"slot={self.slot_uid}, seq={self.seq}, "
            f"incremental={self.incremental})"
        )


def as_checkpoint(cut: "Checkpoint | EpochCut") -> Checkpoint:
    """Unwrap an :class:`EpochCut` to its payload (identity on Checkpoint)."""
    return cut.checkpoint if isinstance(cut, EpochCut) else cut


@dataclass
class RestorePlan:
    """Where a slot's recovery state comes from (``Checkpointer.restore_plan``).

    ``checkpoint`` is the restorable cut — a materialised full checkpoint
    from a backup store, or one synthesised from the external state tier
    (``external=True``) when the backup died with its VM.  ``None`` means
    the slot is unrecoverable from state management.
    """

    slot_uid: int
    checkpoint: Checkpoint | None
    external: bool = False

    @property
    def fence_floor(self) -> int:
        """Committed-prefix floor for ``fence_slot`` (0 when nothing restores)."""
        return self.checkpoint.out_clock if self.checkpoint is not None else 0


class _EpochState:
    """Checkpointer-side bookkeeping for one in-flight snapshot epoch."""

    __slots__ = ("expected", "started_at")

    def __init__(self, expected: set[int], started_at: float) -> None:
        self.expected = expected
        self.started_at = started_at


class Checkpointer:
    """The single coordination seam for checkpoint producers and consumers.

    Owned by the :class:`~repro.runtime.system.StreamProcessingSystem`.
    Every cut — phase-mode periodic, barrier-mode epoch-aligned, or
    out-of-band (lost-backup re-checkpoint) — flows through :meth:`cut`,
    and every recovery's backup selection flows through
    :meth:`restore_plan`.

    Barrier mode (``checkpoint_mode=barrier``) adds the epoch lifecycle:
    :meth:`start_epoch` injects numbered barriers at the sources,
    :meth:`begin_epoch` records which worker slots owe a cut, and a
    snapshot :meth:`complete`\\ s once all of them have reported.  Cuts
    are shipped to the backup VM through the :class:`StateMover` (they
    are state movement, accounted as migration traffic), and a failure
    mid-epoch aborts every in-flight epoch so recovery falls back to the
    last *complete* epoch.

    Batched and columnar delivery need no special handling here: an
    instance force-flushes its pending output batches whenever its epoch
    stamp advances, so a batch — and therefore a columnar
    :class:`~repro.core.tuples.TupleBlock`, which is just a flushed
    batch in columnar form — never spans an epoch boundary on the wire.
    Receivers fence whole messages on the stamped epoch, and an active
    barrier alignment decomposes arriving blocks to rows (per-row
    parking is what alignment means), so the epoch protocol only ever
    sees per-epoch-homogeneous traffic.
    """

    def __init__(self, system: Any) -> None:
        # Imported lazily: migration imports this module for Checkpoint.
        from repro.core.migration import StateMover

        self.system = system
        self.mover = StateMover(system)
        self.epoch_counter = 0
        self.last_complete_epoch = 0
        self.epochs_aborted = 0
        self._inflight: dict[int, _EpochState] = {}

    # -- epoch lifecycle -----------------------------------------------
    @property
    def barrier_mode(self) -> bool:
        return self.system.config.checkpoint.mode == CHECKPOINT_MODE_BARRIER

    def epoch_inflight(self, epoch: int) -> bool:
        """Whether ``epoch`` is still being aligned/cut somewhere."""
        return epoch in self._inflight

    def start_epoch(self) -> int:
        """Open the next snapshot epoch and inject its source barriers."""
        # An epoch wedged for several intervals (e.g. a worker paused
        # through reconfiguration when its barrier arrived) will never
        # complete; reap it so instances stop parking on its account.
        epoch = self.epoch_counter + 1
        for stale in [e for e in self._inflight if e <= epoch - 4]:
            self._abort_epoch(stale, reason="stale")
        self.epoch_counter = epoch
        self.begin_epoch(epoch)
        for instance in list(self.system.instances.values()):
            if instance.is_source and instance.alive and instance.vm.alive:
                instance.inject_barrier(epoch)
        return epoch

    def begin_epoch(self, epoch: int) -> None:
        """Record the worker slots that owe a cut for ``epoch``."""
        expected = {
            inst.uid for inst in self.system.worker_instances() if inst.vm.alive
        }
        self._inflight[epoch] = _EpochState(expected, self.system.sim.now)

    def cut(self, instance: Any, cut: EpochCut) -> None:
        """One operator reported its cut: account, track, and ship it.

        Phase-mode cuts (``epoch == 0``) ship exactly like today —
        directly via ``system.backup_checkpoint`` — keeping the default
        mode bit-identical.  Barrier-mode cuts ship through the
        StateMover and count towards epoch completion.
        """
        checkpoint = cut.checkpoint
        cfg = self.system.config.checkpoint
        size = checkpoint.size_bytes(cfg.bytes_per_entry, cfg.bytes_per_tuple)
        self.system.telemetry.epoch_cut(
            instance.op_name, instance.uid, cut.epoch, size, checkpoint.incremental
        )
        state = self._inflight.get(cut.epoch) if cut.epoch else None
        if state is not None and instance.uid in state.expected:
            state.expected.discard(instance.uid)
            if not state.expected:
                self.complete(cut.epoch)
        if self.barrier_mode:
            target = self.system.choose_backup_vm(instance)
            if target is None:
                return
            self.mover.ship(
                self,
                instance.vm,
                target,
                checkpoint,
                self.system._store_backup,
                checkpoint,
                target,
                None,
                cut.fence_epoch,
            )
        else:
            self.system.backup_checkpoint(instance, checkpoint)

    def complete(self, epoch: int) -> None:
        """All expected slots cut ``epoch``: the snapshot is consistent."""
        state = self._inflight.pop(epoch, None)
        if epoch > self.last_complete_epoch:
            self.last_complete_epoch = epoch
        telemetry = self.system.telemetry
        telemetry.increment("epochs_completed")
        if state is not None:
            telemetry.event(
                "epoch_complete",
                f"epoch {epoch} complete",
                epoch=epoch,
                duration=self.system.sim.now - state.started_at,
            )

    def on_instance_failed(self, instance: Any) -> None:
        """A slot died: abort every in-flight epoch (barrier mode only).

        The dead slot can never report its cut, so those epochs cannot
        complete; aborting releases parked tuples everywhere and leaves
        each backup at its last complete epoch — exactly what recovery
        falls back to.
        """
        if not self._inflight:
            return
        for epoch in sorted(self._inflight):
            self._abort_epoch(epoch, reason=f"slot {instance.uid} failed")

    def _abort_epoch(self, epoch: int, reason: str) -> None:
        self._inflight.pop(epoch, None)
        self.epochs_aborted += 1
        telemetry = self.system.telemetry
        telemetry.increment("epochs_aborted")
        telemetry.event("epoch_aborted", f"epoch {epoch}: {reason}", epoch=epoch)
        for inst in list(self.system.instances.values()):
            if inst.alive and inst.vm.alive:
                inst.abort_barrier_alignment(epoch)

    # -- recovery ------------------------------------------------------
    def restore_plan(self, slot_uid: int, allow_external: bool = True) -> RestorePlan:
        """Select the recovery source for ``slot_uid``.

        Precedence: live backup store first (already materialised to the
        last complete cut), then — with ``allow_external`` — a checkpoint
        synthesised from the external state tier.
        """
        checkpoint = self.system.backup_of(slot_uid)
        if checkpoint is not None:
            return RestorePlan(slot_uid, checkpoint, external=False)
        if allow_external:
            checkpoint = self._external_checkpoint(slot_uid)
            if checkpoint is not None:
                return RestorePlan(slot_uid, checkpoint, external=True)
        return RestorePlan(slot_uid, None, external=False)

    def _external_checkpoint(self, slot_uid: int) -> Checkpoint | None:
        system = self.system
        store = system.external_store
        if len(store) == 0:
            return None
        instance = system.instances.get(slot_uid)
        if instance is None:
            return None
        routing = system.query_manager.routing_to(instance.op_name)
        intervals = routing.intervals_of(slot_uid) if routing is not None else None
        return from_external_store(
            store,
            instance.op_name,
            slot_uid,
            intervals,
            taken_at=system.sim.now,
        )


def materialize_increment(base: Checkpoint, delta: Checkpoint) -> Checkpoint:
    """Apply a delta checkpoint to its base, yielding a full checkpoint.

    Raises :class:`CheckpointError` when the delta does not chain onto the
    base (the owner must then fall back to a full checkpoint).
    """
    if not delta.incremental:
        raise CheckpointError("materialize_increment called with a full checkpoint")
    if base.slot_uid != delta.slot_uid or base.op_name != delta.op_name:
        raise CheckpointError(
            f"delta for {delta.op_name}/{delta.slot_uid} does not match base "
            f"{base.op_name}/{base.slot_uid}"
        )
    if base.incremental:
        raise CheckpointError("base checkpoint is itself a delta")
    if base.seq != delta.base_seq:
        raise CheckpointError(
            f"delta chains onto seq {delta.base_seq}, store holds {base.seq}"
        )
    entries = dict(base.state.entries)
    entries.update(delta.state.entries)
    for key in delta.deleted_keys:
        entries.pop(key, None)
    merged = ProcessingState(
        entries, positions=delta.positions, out_clock=delta.out_clock
    )
    return Checkpoint(
        op_name=delta.op_name,
        slot_uid=delta.slot_uid,
        state=merged,
        buffers=delta.buffers,
        taken_at=delta.taken_at,
        seq=delta.seq,
    )


def from_external_store(
    store: "ExternalStateStore",
    op_name: str,
    slot_uid: int,
    intervals: list[KeyInterval] | None = None,
    taken_at: float = 0.0,
) -> Checkpoint | None:
    """Synthesise a restorable checkpoint from the external state tier.

    The recovery source of last resort: when the failed slot's backup VM
    died too, its last flushed cut still lives in the external store.
    The cut's τ vector, output clock and seq come from the flush
    metadata, so the synthesised checkpoint replays and dedups exactly
    like one retrieved from a backup store.  ``intervals`` restricts the
    restored entries to the slot's own key range (other partitions of
    the operator persist into the same namespace).  Output buffers are
    not persisted externally — the restored instance starts with empty
    β, which is safe under the paper's single-failure-at-a-time scope.

    Returns ``None`` when the slot never flushed a cut.
    """
    meta = store.load_meta(op_name, slot_uid)
    if meta is None:
        return None
    positions, out_clock, seq = meta
    entries = store.restore_all(op_name)
    if intervals is not None:
        entries = {
            key: value
            for key, value in entries.items()
            if any(stable_hash(key) in interval for interval in intervals)
        }
    state = ProcessingState(entries, positions=positions, out_clock=out_clock)
    return Checkpoint(
        op_name=op_name,
        slot_uid=slot_uid,
        state=state,
        taken_at=taken_at,
        seq=seq,
    )


class BackupStore:
    """Backed-up checkpoints held on one VM (the ``backup(o)`` role).

    In the paper the backup of operator *o* lives with one of *o*'s
    upstream operators, selected by ``hash(id(o)) mod |up(o)|``; this class
    is the container on that upstream VM.  It dies with the VM.
    """

    def __init__(self) -> None:
        self._checkpoints: dict[int, Checkpoint] = {}

    def store(self, checkpoint: Checkpoint) -> None:
        """store-backup: keep the most recent checkpoint per owner slot."""
        existing = self._checkpoints.get(checkpoint.slot_uid)
        if existing is not None and existing.seq > checkpoint.seq:
            raise CheckpointError(
                f"stale checkpoint seq {checkpoint.seq} for slot "
                f"{checkpoint.slot_uid} (have {existing.seq})"
            )
        self._checkpoints[checkpoint.slot_uid] = checkpoint

    def retrieve(self, slot_uid: int) -> Checkpoint:
        """retrieve-backup: fetch the checkpoint for ``slot_uid``."""
        checkpoint = self._checkpoints.get(slot_uid)
        if checkpoint is None:
            raise CheckpointError(f"no backup for slot {slot_uid}")
        return checkpoint

    def has(self, slot_uid: int) -> bool:
        """Whether a backup exists for ``slot_uid``."""
        return slot_uid in self._checkpoints

    def delete(self, slot_uid: int) -> None:
        """delete-backup: release a superseded backup (Algorithm 1 line 6)."""
        self._checkpoints.pop(slot_uid, None)

    def owners(self) -> list[int]:
        """Slot uids with a backup in this store."""
        return list(self._checkpoints)

    def __len__(self) -> int:
        return len(self._checkpoints)
