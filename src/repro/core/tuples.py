"""Data model: streams of timestamped, keyed tuples (§2.2 of the paper).

A tuple ``t = (τ, k, p)`` has a logical timestamp assigned by the emitting
operator's monotonically increasing logical clock, a key used to partition
both streams and processing state, and an opaque payload.

Two reproduction-specific extensions:

* ``weight`` — one :class:`Tuple` object may stand for ``weight``
  identical-cost tuples of the same key.  CPU cost, throughput and latency
  accounting scale with the weight, while control-plane structures stay
  exact.  All experiments below ~10k tuples/s run with ``weight == 1``.
* ``slot`` / ``created_at`` — the origin slot uid stamps the tuple at
  emission time (the basis for duplicate detection after replay), and the
  source-side creation time gives end-to-end latency at the sink.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterable

#: Size of the partitioning key space: keys hash into ``[0, KEY_SPACE)``.
KEY_SPACE = 1 << 32


def stable_hash(key: Any) -> int:
    """Map a semantic key to a position in ``[0, KEY_SPACE)``.

    Unlike :func:`hash`, the result is stable across processes and Python
    versions, which keeps state partitioning decisions reproducible.
    """
    return zlib.crc32(_canonical_bytes(key)) % KEY_SPACE


def _canonical_bytes(key: Any) -> bytes:
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, bool):
        return b"B:" + (b"1" if key else b"0")
    if isinstance(key, int):
        # Decimal text keeps arbitrarily large ints hashable and stable.
        return b"i:" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"f:" + struct.pack(">d", key)
    if isinstance(key, tuple):
        parts = [b"t:"]
        for item in key:
            part = _canonical_bytes(item)
            parts.append(struct.pack(">I", len(part)))
            parts.append(part)
        return b"".join(parts)
    raise TypeError(f"unhashable key type for partitioning: {type(key)!r}")


class Tuple:
    """A single stream tuple.

    Attributes
    ----------
    ts:
        Logical timestamp from the origin slot's output clock.
    key:
        Semantic partitioning key (word, vehicle id, ...).
    payload:
        Operator-defined content.
    weight:
        Number of identical tuples this object represents (≥ 1).
    created_at:
        Simulated time at which the original source datum entered the
        system; preserved across operators for end-to-end latency.
    slot:
        Uid of the slot that emitted this tuple; ``-1`` before emission.
    replay:
        Set on tuples re-sent during source-replay recovery, where
        intermediate operators must re-process tuples they have already
        seen; receivers bypass duplicate filtering for flagged tuples and
        the flag propagates to derived outputs.
    """

    __slots__ = ("ts", "key", "payload", "weight", "created_at", "slot", "replay")

    def __init__(
        self,
        ts: int,
        key: Any,
        payload: Any = None,
        weight: int = 1,
        created_at: float = 0.0,
        slot: int = -1,
        replay: bool = False,
    ) -> None:
        if weight < 1:
            raise ValueError(f"tuple weight must be >= 1: {weight}")
        self.ts = ts
        self.key = key
        self.payload = payload
        self.weight = weight
        self.created_at = created_at
        self.slot = slot
        self.replay = replay

    def key_position(self) -> int:
        """Position of this tuple's key in the partitioning key space."""
        return stable_hash(self.key)

    def copy(self) -> "Tuple":
        """An independent copy of the tuple."""
        return Tuple(
            self.ts,
            self.key,
            self.payload,
            self.weight,
            self.created_at,
            self.slot,
            self.replay,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self.ts == other.ts
            and self.key == other.key
            and self.payload == other.payload
            and self.weight == other.weight
            and self.slot == other.slot
        )

    def __hash__(self) -> int:
        return hash((self.ts, self.slot))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f", w={self.weight}" if self.weight != 1 else ""
        return f"Tuple(ts={self.ts}, key={self.key!r}, p={self.payload!r}{extra})"


def total_weight(tuples: Iterable[Tuple]) -> int:
    """Sum of weights — the number of logical tuples represented."""
    return sum(t.weight for t in tuples)
