"""Data model: streams of timestamped, keyed tuples (§2.2 of the paper).

A tuple ``t = (τ, k, p)`` has a logical timestamp assigned by the emitting
operator's monotonically increasing logical clock, a key used to partition
both streams and processing state, and an opaque payload.

Two reproduction-specific extensions:

* ``weight`` — one :class:`Tuple` object may stand for ``weight``
  identical-cost tuples of the same key.  CPU cost, throughput and latency
  accounting scale with the weight, while control-plane structures stay
  exact.  All experiments below ~10k tuples/s run with ``weight == 1``.
* ``slot`` / ``created_at`` — the origin slot uid stamps the tuple at
  emission time (the basis for duplicate detection after replay), and the
  source-side creation time gives end-to-end latency at the sink.
"""

from __future__ import annotations

import struct
import zlib
from array import array
from typing import Any, Iterable

#: Size of the partitioning key space: keys hash into ``[0, KEY_SPACE)``.
KEY_SPACE = 1 << 32

#: Bound on the stable_hash memo table; the cache resets when full so a
#: pathological key stream cannot grow it without limit.
_HASH_CACHE_MAX = 1 << 16
_hash_cache: dict[Any, int] = {}


def stable_hash(key: Any) -> int:
    """Map a semantic key to a position in ``[0, KEY_SPACE)``.

    Unlike :func:`hash`, the result is stable across processes and Python
    versions, which keeps state partitioning decisions reproducible.
    String/bytes results are memoised (bounded) — workload key spaces
    are small compared to the tuple volume hashed through routing and
    block slicing.  Numeric keys are excluded because cross-type
    equality (``True == 1 == 1.0``) would alias distinct canonical
    encodings in the cache.
    """
    if type(key) is str or type(key) is bytes:
        cached = _hash_cache.get(key)
        if cached is not None:
            return cached
        position = zlib.crc32(_canonical_bytes(key)) % KEY_SPACE
        if len(_hash_cache) >= _HASH_CACHE_MAX:
            _hash_cache.clear()
        _hash_cache[key] = position
        return position
    return zlib.crc32(_canonical_bytes(key)) % KEY_SPACE


def _canonical_bytes(key: Any) -> bytes:
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, bool):
        return b"B:" + (b"1" if key else b"0")
    if isinstance(key, int):
        # Decimal text keeps arbitrarily large ints hashable and stable.
        return b"i:" + str(key).encode("ascii")
    if isinstance(key, float):
        return b"f:" + struct.pack(">d", key)
    if isinstance(key, tuple):
        parts = [b"t:"]
        for item in key:
            part = _canonical_bytes(item)
            parts.append(struct.pack(">I", len(part)))
            parts.append(part)
        return b"".join(parts)
    raise TypeError(f"unhashable key type for partitioning: {type(key)!r}")


class Tuple:
    """A single stream tuple.

    Attributes
    ----------
    ts:
        Logical timestamp from the origin slot's output clock.
    key:
        Semantic partitioning key (word, vehicle id, ...).
    payload:
        Operator-defined content.
    weight:
        Number of identical tuples this object represents (≥ 1).
    created_at:
        Simulated time at which the original source datum entered the
        system; preserved across operators for end-to-end latency.
    slot:
        Uid of the slot that emitted this tuple; ``-1`` before emission.
    replay:
        Set on tuples re-sent during source-replay recovery, where
        intermediate operators must re-process tuples they have already
        seen; receivers bypass duplicate filtering for flagged tuples and
        the flag propagates to derived outputs.
    """

    __slots__ = ("ts", "key", "payload", "weight", "created_at", "slot", "replay")

    def __init__(
        self,
        ts: int,
        key: Any,
        payload: Any = None,
        weight: int = 1,
        created_at: float = 0.0,
        slot: int = -1,
        replay: bool = False,
    ) -> None:
        if weight < 1:
            raise ValueError(f"tuple weight must be >= 1: {weight}")
        self.ts = ts
        self.key = key
        self.payload = payload
        self.weight = weight
        self.created_at = created_at
        self.slot = slot
        self.replay = replay

    def key_position(self) -> int:
        """Position of this tuple's key in the partitioning key space."""
        return stable_hash(self.key)

    def copy(self) -> "Tuple":
        """An independent copy of the tuple."""
        return Tuple(
            self.ts,
            self.key,
            self.payload,
            self.weight,
            self.created_at,
            self.slot,
            self.replay,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Tuple):
            return NotImplemented
        return (
            self.ts == other.ts
            and self.key == other.key
            and self.payload == other.payload
            and self.weight == other.weight
            and self.slot == other.slot
        )

    def __hash__(self) -> int:
        return hash((self.ts, self.slot))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f", w={self.weight}" if self.weight != 1 else ""
        return f"Tuple(ts={self.ts}, key={self.key!r}, p={self.payload!r}{extra})"


def total_weight(tuples: Iterable[Tuple]) -> int:
    """Sum of weights — the number of logical tuples represented."""
    return sum(t.weight for t in tuples)


class TupleBlock:
    """A struct-of-arrays batch of tuples from one origin slot.

    The columnar data plane ships one :class:`TupleBlock` per network
    message instead of a list of :class:`Tuple` objects.  Fixed-width
    columns (``ts``, ``key_pos``, ``weight``, ``created_at``) live in
    :mod:`array` arrays; ``keys`` and ``payloads`` stay Python lists
    because they hold arbitrary objects.  ``slot`` and ``replay`` are
    scalars: the output batcher coalesces per destination, so every row
    shares the emitting slot, and replayed tuples never batch.

    Rows are in emission order, which per origin slot means strictly
    ascending ``ts`` — the property receivers exploit for prefix-scan
    duplicate filtering and single-advance watermarks.
    """

    __slots__ = ("slot", "replay", "ts", "key_pos", "weight",
                 "created_at", "keys", "payloads", "_total_weight")

    def __init__(self, slot: int, replay: bool = False) -> None:
        self.slot = slot
        self.replay = replay
        self.ts = array("q")
        self.key_pos = array("Q")
        self.weight = array("q")
        self.created_at = array("d")
        self.keys: list[Any] = []
        self.payloads: list[Any] = []
        self._total_weight = 0

    @classmethod
    def from_tuples(cls, tuples: list[Tuple]) -> "TupleBlock":
        """Build a block from a non-empty same-slot list of tuples."""
        first = tuples[0]
        block = cls(first.slot, first.replay)
        append = block.append
        for tup in tuples:
            append(tup.ts, tup.key, tup.payload, tup.weight,
                   tup.created_at, stable_hash(tup.key))
        return block

    def append(self, ts: int, key: Any, payload: Any, weight: int,
               created_at: float, key_pos: int) -> None:
        """Append one row (``key_pos`` is the precomputed stable hash)."""
        self.ts.append(ts)
        self.key_pos.append(key_pos)
        self.weight.append(weight)
        self.created_at.append(created_at)
        self.keys.append(key)
        self.payloads.append(payload)
        self._total_weight += weight

    def __len__(self) -> int:
        return len(self.ts)

    def total_weight(self) -> int:
        """Sum of row weights — the number of logical tuples held."""
        return self._total_weight

    def to_tuples(self) -> list[Tuple]:
        """Materialise per-row :class:`Tuple` objects (fallback path)."""
        slot = self.slot
        replay = self.replay
        return [
            Tuple(ts, key, payload, weight, created_at, slot, replay)
            for ts, key, payload, weight, created_at in zip(
                self.ts, self.keys, self.payloads,
                self.weight, self.created_at,
            )
        ]

    def row(self, i: int) -> Tuple:
        """Materialise row ``i`` as a :class:`Tuple`."""
        return Tuple(
            self.ts[i], self.keys[i], self.payloads[i], self.weight[i],
            self.created_at[i], self.slot, self.replay,
        )

    def suffix(self, start: int) -> "TupleBlock":
        """Rows from ``start`` onward as a new block (prefix dedup)."""
        out = TupleBlock(self.slot, self.replay)
        out.ts = self.ts[start:]
        out.key_pos = self.key_pos[start:]
        out.weight = self.weight[start:]
        out.created_at = self.created_at[start:]
        out.keys = self.keys[start:]
        out.payloads = self.payloads[start:]
        out._total_weight = sum(out.weight)
        return out

    def split_by_intervals(self, intervals) -> tuple["TupleBlock", "TupleBlock"]:
        """Split into (inside, outside) blocks by key-interval membership.

        ``intervals`` is an iterable of :class:`KeyInterval`-like objects
        supporting ``position in interval``.  Row order — and therefore
        the ascending-``ts`` invariant — is preserved in both halves, so
        every ``(slot, ts)`` identity survives routing carve-outs and
        fluid-migration slicing.
        """
        inside = TupleBlock(self.slot, self.replay)
        outside = TupleBlock(self.slot, self.replay)
        spans = list(intervals)
        for i, pos in enumerate(self.key_pos):
            target = outside
            for span in spans:
                if pos in span:
                    target = inside
                    break
            target.append(self.ts[i], self.keys[i], self.payloads[i],
                          self.weight[i], self.created_at[i], pos)
        return inside, outside
