"""Query state: processing, buffer and routing state (§3.1 of the paper).

The paper divides externalised operator state into three parts:

* **processing state** ``θ`` — a set of key/value pairs summarising the
  history of processed tuples, plus the timestamp vector ``τ`` of the most
  recent input tuples reflected in it;
* **buffer state** ``β`` — output tuples kept for downstream replay, per
  partitioned downstream operator;
* **routing state** ``ρ`` — the key-interval → partition mapping used to
  dispatch tuples to a partitioned downstream operator.

This module implements those three structures together with the key-space
machinery (intervals over a 32-bit hash space) they are defined on.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator

from repro.core.tuples import KEY_SPACE, Tuple, stable_hash
from repro.errors import KeySpaceError, PartitionError, StateError


class KeyInterval:
    """A half-open interval ``[lo, hi)`` in the partitioning key space."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: int, hi: int) -> None:
        if not 0 <= lo < hi <= KEY_SPACE:
            raise KeySpaceError(f"invalid key interval [{lo}, {hi})")
        self.lo = lo
        self.hi = hi

    @classmethod
    def full(cls) -> "KeyInterval":
        """The interval covering the whole key space."""
        return cls(0, KEY_SPACE)

    def __contains__(self, position: int) -> bool:
        return self.lo <= position < self.hi

    def contains_key(self, key: Any) -> bool:
        """Whether a semantic key hashes into this interval."""
        return stable_hash(key) in self

    @property
    def width(self) -> int:
        return self.hi - self.lo

    def split(self, parts: int) -> list["KeyInterval"]:
        """Split evenly into ``parts`` sub-intervals (hash partitioning)."""
        if parts < 1:
            raise PartitionError(f"cannot split into {parts} parts")
        if parts > self.width:
            raise PartitionError(
                f"interval of width {self.width} cannot produce {parts} parts"
            )
        bounds = [self.lo + (self.width * i) // parts for i in range(parts)]
        bounds.append(self.hi)
        return [KeyInterval(bounds[i], bounds[i + 1]) for i in range(parts)]

    def split_by_positions(
        self, parts: int, positions: Iterable[int]
    ) -> list["KeyInterval"]:
        """Split into ``parts`` intervals balancing the observed key load.

        ``positions`` are key-space positions of recently processed keys;
        the paper notes "the key distribution can be used to guide the
        split".  Falls back to an even split when there is no usable
        distribution.
        """
        inside = sorted(p for p in positions if p in self)
        if parts < 1:
            raise PartitionError(f"cannot split into {parts} parts")
        if len(inside) < parts:
            return self.split(parts)
        bounds = [self.lo]
        for i in range(1, parts):
            cut = inside[(len(inside) * i) // parts]
            # Guard against duplicate cut points collapsing an interval.
            cut = max(cut, bounds[-1] + 1)
            if cut >= self.hi:
                return self.split(parts)
            bounds.append(cut)
        bounds.append(self.hi)
        return [KeyInterval(bounds[i], bounds[i + 1]) for i in range(parts)]

    def adjacent_to(self, other: "KeyInterval") -> bool:
        """Whether the two intervals share a boundary."""
        return self.hi == other.lo or other.hi == self.lo

    def merge(self, other: "KeyInterval") -> "KeyInterval":
        """Merge with an adjacent interval (scale in, §3.3)."""
        if not self.adjacent_to(other):
            raise KeySpaceError(f"cannot merge non-adjacent {self} and {other}")
        return KeyInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, KeyInterval):
            return NotImplemented
        return self.lo == other.lo and self.hi == other.hi

    def __hash__(self) -> int:
        return hash((self.lo, self.hi))

    def __repr__(self) -> str:
        return f"[{self.lo}, {self.hi})"


class RoutingState:
    """Key-interval routing for one partitioned downstream operator (ρ).

    Maps disjoint intervals that jointly cover the key space to the slot
    uids of the downstream partitions.  The structure is owned by the
    query manager and mirrored into upstream dispatchers; it changes only
    on scale out / scale in / recovery, never during normal processing.
    """

    def __init__(self, entries: Iterable[tuple[KeyInterval, int]]) -> None:
        self._entries = sorted(entries, key=lambda e: e[0].lo)
        self._validate()

    @classmethod
    def single(cls, target: int) -> "RoutingState":
        """Routing for an unpartitioned operator: everything to one slot."""
        return cls([(KeyInterval.full(), target)])

    def _validate(self) -> None:
        if not self._entries:
            raise KeySpaceError("routing state must have at least one entry")
        expected_lo = 0
        for interval, _target in self._entries:
            if interval.lo != expected_lo:
                raise KeySpaceError(
                    f"routing intervals must tile the key space; gap/overlap "
                    f"at {expected_lo} (found {interval})"
                )
            expected_lo = interval.hi
        if expected_lo != KEY_SPACE:
            raise KeySpaceError(
                f"routing intervals must cover the key space; end at {expected_lo}"
            )

    def __iter__(self) -> Iterator[tuple[KeyInterval, int]]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def targets(self) -> list[int]:
        """Slot uids in key-interval order (may contain repeats)."""
        return [target for _interval, target in self._entries]

    def route_position(self, position: int) -> int:
        """Slot uid responsible for a key-space ``position``."""
        lo, hi = 0, len(self._entries) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if position < self._entries[mid][0].hi:
                hi = mid
            else:
                lo = mid + 1
        interval, target = self._entries[lo]
        if position not in interval:
            raise KeySpaceError(f"position {position} not covered by {interval}")
        return target

    def route_key(self, key: Any) -> int:
        """Slot uid responsible for a semantic key."""
        return self.route_position(stable_hash(key))

    def intervals_of(self, target: int) -> list[KeyInterval]:
        """All intervals currently owned by ``target``."""
        return [interval for interval, t in self._entries if t == target]

    def replace_target(
        self, old_target: int, replacements: list[tuple[KeyInterval, int]]
    ) -> "RoutingState":
        """Return a new routing state with ``old_target``'s intervals
        replaced by ``replacements`` (Algorithm 2, partition-routing-state).

        The replacements must exactly tile the intervals previously owned
        by ``old_target``.
        """
        owned = self.intervals_of(old_target)
        if not owned:
            raise KeySpaceError(f"target {old_target} not present in routing state")
        owned_width = sum(i.width for i in owned)
        repl_width = sum(i.width for i, _t in replacements)
        if owned_width != repl_width:
            raise KeySpaceError(
                f"replacements cover width {repl_width}, expected {owned_width}"
            )
        kept = [(i, t) for i, t in self._entries if t != old_target]
        return RoutingState(kept + list(replacements))

    def split_off(
        self,
        old_target: int,
        intervals: list[KeyInterval],
        new_target: int,
    ) -> "RoutingState":
        """Move ``intervals`` (a subset of ``old_target``'s range) to
        ``new_target``, leaving the rest with ``old_target``.

        This is the per-chunk routing swap of fluid migration: after each
        chunk commits, upstreams route the migrated sub-intervals to the
        new slot while the old slot keeps the un-migrated remainder.
        Every moved interval must lie entirely inside intervals currently
        owned by ``old_target``; adjacent same-target intervals coalesce.
        """
        owned = self.intervals_of(old_target)
        if not owned:
            raise KeySpaceError(f"target {old_target} not present in routing state")
        moved = sorted(intervals, key=lambda i: i.lo)
        for lhs, rhs in zip(moved, moved[1:]):
            if rhs.lo < lhs.hi:
                raise KeySpaceError(f"split_off intervals overlap: {lhs} / {rhs}")
        entries: list[tuple[KeyInterval, int]] = [
            (i, t) for i, t in self._entries if t != old_target
        ]
        remaining = moved
        for interval in owned:
            cuts: list[KeyInterval] = []
            rest: list[KeyInterval] = []
            for piece in remaining:
                if piece.lo >= interval.lo and piece.hi <= interval.hi:
                    cuts.append(piece)
                elif piece.hi <= interval.lo or piece.lo >= interval.hi:
                    rest.append(piece)
                else:
                    raise KeySpaceError(
                        f"interval {piece} straddles the boundary of {interval} "
                        f"owned by target {old_target}"
                    )
            remaining = rest
            # Keep the uncovered remainder of this owned interval with the
            # old target, in order, interleaved with the moved pieces.
            cursor = interval.lo
            for piece in cuts:
                if piece.lo > cursor:
                    entries.append((KeyInterval(cursor, piece.lo), old_target))
                entries.append((piece, new_target))
                cursor = piece.hi
            if cursor < interval.hi:
                entries.append((KeyInterval(cursor, interval.hi), old_target))
        if remaining:
            raise KeySpaceError(
                f"intervals {remaining} not owned by target {old_target}"
            )
        return RoutingState(_coalesce(entries))

    def reassign(self, old_target: int, new_target: int) -> "RoutingState":
        """Point ``old_target``'s intervals at ``new_target`` (recovery)."""
        return RoutingState(
            [(i, new_target if t == old_target else t) for i, t in self._entries]
        )

    def merge_targets(self, survivor: int, removed: int) -> "RoutingState":
        """Give ``removed``'s intervals to ``survivor`` (scale in, §3.3)."""
        if not self.intervals_of(removed):
            raise KeySpaceError(f"target {removed} not present in routing state")
        merged = [(i, survivor if t == removed else t) for i, t in self._entries]
        return RoutingState(_coalesce(merged))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{i}→{t}" for i, t in self._entries)
        return f"RoutingState({inner})"


def _coalesce(
    entries: list[tuple[KeyInterval, int]]
) -> list[tuple[KeyInterval, int]]:
    entries = sorted(entries, key=lambda e: e[0].lo)
    out: list[tuple[KeyInterval, int]] = []
    for interval, target in entries:
        if out and out[-1][1] == target and out[-1][0].hi == interval.lo:
            out[-1] = (out[-1][0].merge(interval), target)
        else:
            out.append((interval, target))
    return out


class ProcessingState:
    """An operator's processing state θ with its timestamp vector τ.

    ``positions`` maps each input connection (origin slot uid) to the
    timestamp of the most recent tuple from that connection reflected in
    the state — the τ vector returned by ``get-processing-state`` in the
    paper.  ``out_clock`` snapshots the operator's logical output clock so
    a restored operator resumes emitting from the right timestamp (§3.2).

    Snapshots are **copy-on-write**: :meth:`snapshot` shares the value
    objects between the live state and the snapshot, and the first
    mutation-capable access to a shared container (on either side) copies
    that one entry before handing it out.  ``_private`` tracks the keys
    whose values are known not to be shared with any snapshot; rebinding a
    key (plain assignment) never needs a copy because it leaves the old
    object untouched for whoever still references it.
    """

    def __init__(
        self,
        entries: dict[Any, Any] | None = None,
        positions: dict[int, int] | None = None,
        out_clock: int = 0,
    ) -> None:
        self.entries: dict[Any, Any] = dict(entries) if entries else {}
        self.positions: dict[int, int] = dict(positions) if positions else {}
        self.out_clock = out_clock
        #: Keys touched since the last consume — ``None`` when dirty
        #: tracking is off.  Reads of mutable values count as touches
        #: (operators mutate nested containers in place), which makes the
        #: set a conservative superset of actual changes — exactly what
        #: incremental checkpointing needs.
        self.dirty: set[Any] | None = None
        #: Keys whose values this state owns exclusively.  Everything else
        #: is treated as potentially shared with a snapshot (or with the
        #: caller's dict) and is copied before the first mutable access.
        self._private: set[Any] = set()

    # Mapping-style access used by operator implementations -----------------

    def __contains__(self, key: Any) -> bool:
        return key in self.entries

    def _own(self, key: Any, value: Any) -> Any:
        """Return a privately owned copy of ``value`` for ``key``.

        Copy-on-write seam: called before any access through which the
        caller could mutate a container in place.
        """
        if key not in self._private:
            value = self.entries[key] = _copy_value(value)
            self._private.add(key)
        return value

    def __getitem__(self, key: Any) -> Any:
        value = self.entries[key]
        if isinstance(value, (dict, list, set)):
            if self.dirty is not None:
                self.dirty.add(key)
            value = self._own(key, value)
        return value

    def __setitem__(self, key: Any, value: Any) -> None:
        if self.dirty is not None:
            self.dirty.add(key)
        self.entries[key] = value
        self._private.add(key)

    def adopt(self, key: Any, value: Any) -> None:
        """Insert a value object another holder may still reference.

        Unlike ``__setitem__`` this does *not* claim private ownership:
        an absorbed chunk's values are shared with the shipped
        checkpoint — and, transitively, with the frozen pre-migration
        snapshot the chunk was extracted from — so the first in-place
        mutation here must copy first (:meth:`_own`), exactly as after
        taking a snapshot.
        """
        if self.dirty is not None:
            self.dirty.add(key)
        self.entries[key] = value
        self._private.discard(key)

    def get(self, key: Any, default: Any = None) -> Any:
        """dict.get over the state entries (marks dirty on mutable reads)."""
        if key in self.entries:
            return self[key]
        return default

    def setdefault(self, key: Any, default: Any) -> Any:
        """dict.setdefault over the state entries (marks dirty)."""
        if key in self.entries:
            return self[key]
        self[key] = default
        return default

    def bulk_apply(
        self, grouped: dict[Any, Any], apply: Callable[[Any, Any], Any]
    ) -> None:
        """Grouped bulk-apply for vectorized kernels.

        ``apply(current, addition)`` is called once per key with the
        privately-owned current value (``None`` when the key is absent)
        and must return the new value — returning ``addition`` itself to
        install a fresh value is fine, but the state owns it afterwards.
        Semantically identical to a ``setdefault``/merge per key; the
        dirty-marking and copy-on-write bookkeeping that dominate the
        per-key accessors are hoisted to one set operation per block.
        """
        entries = self.entries
        private = self._private
        if self.dirty is not None:
            self.dirty.update(grouped)
        copy = _copy_value
        for key, addition in grouped.items():
            value = entries.get(key)
            if value is None and key not in entries:
                entries[key] = apply(None, addition)
            else:
                if key not in private:
                    value = entries[key] = copy(value)
                new = apply(value, addition)
                if new is not value:
                    entries[key] = new
        private.update(grouped)

    def bulk_merge_buckets(self, grouped: dict[Any, dict[Any, int]]) -> None:
        """:meth:`bulk_apply` specialised to bucket-dict values.

        ``grouped`` maps key -> ``{bucket: weight}`` additions; each
        key's buckets merge by addition into the stored bucket dict (an
        absent key installs its additions dict outright, which the state
        then owns).  Equivalent to ``bulk_apply`` with a merge callback,
        with the per-key callback dispatch inlined away — this is the
        innermost loop of the windowed-counter kernel.
        """
        entries = self.entries
        private = self._private
        if self.dirty is not None:
            self.dirty.update(grouped)
        eget = entries.get
        for key, additions in grouped.items():
            buckets = eget(key)
            if buckets is None:
                # Bucket values are always dicts, so None means absent.
                entries[key] = additions
                continue
            if key not in private:
                buckets = entries[key] = dict(buckets)
            bget = buckets.get
            for index, weight in additions.items():
                buckets[index] = bget(index, 0) + weight
        private.update(grouped)

    def bulk_bucket_add(
        self, index: Any, keys: list[Any], weights: Any
    ) -> None:
        """Add ``weights[i]`` to bucket ``index`` of ``keys[i]``'s dict.

        The windowed-counter kernel's fast path: when every row of a
        block falls in one tumbling window, grouping per key buys
        nothing (block rows are mostly distinct keys), so this fuses
        grouping and application into a single pass — one ``entries``
        probe per row, with dirty-marking and ownership hoisted to set
        operations over the raw key column.  Copy-on-write still holds:
        a shared bucket dict is copied on its first touch (and marked
        private immediately, so a repeated key copies once).
        """
        entries = self.entries
        private = self._private
        if self.dirty is not None:
            self.dirty.update(keys)
        eget = entries.get
        for key, weight in zip(keys, weights):
            buckets = eget(key)
            if buckets is None:
                entries[key] = {index: weight}
            else:
                if key not in private:
                    buckets = entries[key] = dict(buckets)
                    private.add(key)
                buckets[index] = buckets.get(index, 0) + weight
        private.update(keys)

    def pop(self, key: Any, default: Any = None) -> Any:
        """dict.pop over the state entries (marks dirty)."""
        if key not in self.entries:
            return default
        if self.dirty is not None:
            self.dirty.add(key)
        value = self.entries.pop(key)
        if key in self._private:
            self._private.discard(key)
        elif isinstance(value, (dict, list, set)):
            # Still shared with a snapshot: the caller may mutate what we
            # hand back, so give it a copy.
            value = _copy_value(value)
        return value

    def raw_get(self, key: Any, default: Any = None) -> Any:
        """Read without dirty-marking, copy-on-write or tier movement
        (checkpoint path — callers must not mutate the value)."""
        return self.entries.get(key, default)

    # Dirty tracking for incremental checkpoints ----------------------------

    def enable_dirty_tracking(self) -> None:
        """Start tracking touched keys (incremental checkpointing)."""
        if self.dirty is None:
            self.dirty = set()

    def consume_dirty(self) -> set[Any]:
        """Return and reset the set of keys touched since the last call."""
        if self.dirty is None:
            return set()
        touched = self.dirty
        self.dirty = set()
        return touched

    def keys(self):
        """Keys of the processing-state entries."""
        return self.entries.keys()

    def items(self):
        """(key, value) pairs of the processing-state entries.

        Yields through the same copy-on-write seam as ``__getitem__``:
        operators mutate container values while iterating (window
        flushes, join pruning), so each mutable value is privatised — and
        dirty-marked — as it is handed out.
        """
        for key in list(self.entries):
            if key in self.entries:  # tolerate pops between yields
                yield key, self[key]

    def share_all(self) -> dict[Any, Any]:
        """Give up exclusive ownership of every entry; return raw entries.

        Checkpoint partitioning and merging distribute the value objects
        into new states without copying; clearing ``_private`` first means
        any later mutation of *this* state copies before writing, keeping
        every holder isolated.
        """
        self._private.clear()
        return self.entries

    def __len__(self) -> int:
        return len(self.entries)

    # State-management operations -------------------------------------------

    def snapshot(self) -> "ProcessingState":
        """A consistent copy, as taken under the operator's state lock.

        Copy-on-write: the snapshot shares the value objects with the
        live state instead of copying each one eagerly, so the cost is a
        single dict copy regardless of value sizes.  Both sides lose
        exclusive ownership; whichever side next reaches a shared
        container through a mutating accessor copies that one entry
        first.  ``take_checkpoint`` therefore costs host time
        proportional to the post-checkpoint write set, not to the total
        state size.
        """
        snap = ProcessingState(positions=self.positions, out_clock=self.out_clock)
        snap.entries = dict(self.entries)
        self._private.clear()
        return snap

    def advance(self, slot_uid: int, ts: int) -> None:
        """Record that the tuple ``ts`` from ``slot_uid`` is now reflected."""
        current = self.positions.get(slot_uid, -1)
        if ts > current:
            self.positions[slot_uid] = ts

    def partition(self, intervals: list[KeyInterval]) -> list["ProcessingState"]:
        """Split by key interval (Algorithm 2, partition-processing-state).

        Every entry must fall into exactly one interval; τ and the output
        clock are copied to every part, as in the paper (line 6).
        """
        parts = [
            ProcessingState(positions=self.positions, out_clock=self.out_clock)
            for _ in intervals
        ]
        for key, value in self.share_all().items():
            position = stable_hash(key)
            for interval, part in zip(intervals, parts):
                if position in interval:
                    part.entries[key] = value
                    break
            else:
                raise PartitionError(
                    f"key {key!r} (pos {position}) not covered by split intervals"
                )
        return parts

    def extract(self, intervals: list[KeyInterval]) -> "ProcessingState":
        """Remove and return the entries whose key hashes fall in
        ``intervals`` (fluid migration: sub-interval extraction without a
        full partition).

        The extracted state carries a copy of the current τ vector and
        output clock — at extraction time every reflected tuple for those
        keys is covered by τ, exactly as in a partitioned checkpoint.
        Value objects move without copying: neither side keeps exclusive
        ownership, so whichever side mutates a value next copies it first
        (the same copy-on-write discipline as :meth:`partition`).
        Extracted keys are dirty-marked so a later incremental checkpoint
        of *this* state reports them as deleted.
        """
        taken = ProcessingState(positions=self.positions, out_clock=self.out_clock)
        for key in list(self.entries):
            position = stable_hash(key)
            if any(position in interval for interval in intervals):
                taken.entries[key] = self.entries.pop(key)
                self._private.discard(key)
                if self.dirty is not None:
                    self.dirty.add(key)
        return taken

    def merge(
        self,
        other: "ProcessingState",
        merge_value: Callable[[Any, Any], Any] | None = None,
    ) -> "ProcessingState":
        """Merge two partitions' state (scale in, §3.3).

        Keys are disjoint after a correct partitioning; overlapping keys
        require ``merge_value`` to combine the two values.
        """
        merged = ProcessingState(
            entries=self.share_all(),
            positions=self.positions,
            out_clock=max(self.out_clock, other.out_clock),
        )
        for key, value in other.share_all().items():
            if key in merged.entries:
                if merge_value is None:
                    raise StateError(
                        f"key {key!r} present in both partitions and no "
                        "merge function given"
                    )
                merged.entries[key] = merge_value(merged.entries[key], value)
            else:
                merged.entries[key] = value
        for slot_uid, ts in other.positions.items():
            if merged.positions.get(slot_uid, -1) < ts:
                merged.positions[slot_uid] = ts
        return merged

    def estimated_bytes(self, bytes_per_entry: float) -> float:
        """Approximate serialised size, used for checkpoint transfer cost."""
        return len(self.entries) * bytes_per_entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ProcessingState({len(self.entries)} entries, τ={self.positions}, "
            f"clock={self.out_clock})"
        )


def _copy_value(value: Any) -> Any:
    """Copy one state value. Containers are copied one level deep; operator
    values are conventionally flat (counters, small dicts/lists)."""
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    if isinstance(value, set):
        return set(value)
    return value


class OutputBuffer:
    """Buffer state β toward one (possibly partitioned) downstream operator.

    Tuples are appended in emission order, so timestamps are monotone per
    destination slot and trimming removes a prefix.
    """

    def __init__(self) -> None:
        self._by_dest: dict[int, list[Tuple]] = {}

    def append(self, dest_slot: int, tup: Tuple) -> None:
        """Buffer one emitted tuple for ``dest_slot``."""
        self._by_dest.setdefault(dest_slot, []).append(tup)

    def destinations(self) -> list[int]:
        """Destination slot uids with buffered tuples."""
        return list(self._by_dest)

    def tuples_for(self, dest_slot: int) -> list[Tuple]:
        """Buffered tuples for one destination, oldest first."""
        return list(self._by_dest.get(dest_slot, ()))

    def tuples_after(self, dest_slot: int, ts: int) -> list[Tuple]:
        """Buffered tuples for ``dest_slot`` with timestamps beyond ``ts``."""
        return [t for t in self._by_dest.get(dest_slot, ()) if t.ts > ts]

    def trim(self, dest_slot: int, ts: int) -> int:
        """Drop tuples with timestamps ≤ ``ts``; returns how many."""
        tuples = self._by_dest.get(dest_slot)
        if not tuples:
            return 0
        kept = [t for t in tuples if t.ts > ts]
        dropped = len(tuples) - len(kept)
        if kept:
            self._by_dest[dest_slot] = kept
        else:
            del self._by_dest[dest_slot]
        return dropped

    def trim_by_age(self, cutoff: float) -> int:
        """Drop tuples created before ``cutoff`` (upstream-backup retention).

        Used by the baseline fault-tolerance strategies, which have no
        checkpoints to trim against and instead retain a window's worth of
        tuples by age.
        """
        dropped = 0
        for dest in list(self._by_dest):
            tuples = self._by_dest[dest]
            kept = [t for t in tuples if t.created_at >= cutoff]
            dropped += len(tuples) - len(kept)
            if kept:
                self._by_dest[dest] = kept
            else:
                del self._by_dest[dest]
        return dropped

    def drop_destination(self, dest_slot: int) -> None:
        """Forget all buffered tuples for one destination."""
        self._by_dest.pop(dest_slot, None)

    def repartition(self, route: Callable[[Tuple], int]) -> None:
        """Reassign every buffered tuple to the destination chosen by
        ``route`` (Algorithm 2, partition-buffer-state)."""
        tuples = [t for bucket in self._by_dest.values() for t in bucket]
        tuples.sort(key=lambda t: (t.slot, t.ts))
        self._by_dest = {}
        for tup in tuples:
            self.append(route(tup), tup)

    def tuple_count(self) -> int:
        """Total buffered tuple objects."""
        return sum(len(bucket) for bucket in self._by_dest.values())

    def weight_total(self) -> int:
        """Total buffered logical tuples (sum of weights)."""
        return sum(t.weight for bucket in self._by_dest.values() for t in bucket)

    def snapshot(self) -> "OutputBuffer":
        """A shallow-copied, isolated copy of the buffer."""
        copy = OutputBuffer()
        copy._by_dest = {dest: list(bucket) for dest, bucket in self._by_dest.items()}
        return copy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = {dest: len(bucket) for dest, bucket in self._by_dest.items()}
        return f"OutputBuffer({sizes})"
