"""Windowed stream-stream join — the paper's canonical stateful operator.

§2 singles joins out twice: as the archetypal stateful operator, and as
the reason partitioning must respect operator semantics ("e.g. by join
key and table tag when using an improved repartition join [9]").  This
module implements that repartition join:

* both input streams are keyed by the join key, so the routing layer
  already co-locates matching tuples on the same partition;
* the per-key state value holds two window buffers tagged by *side*
  (the "table tag"), so partitioning state by key moves both sides of
  every key together — exactly the property Algorithm 2 relies on;
* tuples join against the opposite side's buffer within a time window,
  and expired entries are pruned lazily on access plus periodically via
  the operator timer.

Because the state is ordinary keyed entries, everything else in the
system — checkpointing, backup, partitioning, recovery, scale in — works
on joins unchanged.

The join is also the system's canonical *multi-input* operator: under
``checkpoint_mode = "barrier"`` (DESIGN.md §14) a join instance is where
epoch-barrier alignment actually happens — the first input to deliver
its barrier is blocked (fresh tuples park raw, pre-admission) while the
slower side keeps flowing, and the epoch's cut is taken only once every
live upstream slot's barrier has arrived, so no post-barrier tuple can
leak into the cut.  ``tests/runtime/test_barrier_alignment.py`` pins
that behaviour.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.operator import Operator, OperatorContext
from repro.core.tuples import Tuple
from repro.errors import ConfigurationError

#: Side tags carried in join input payloads.
SIDE_LEFT = "L"
SIDE_RIGHT = "R"


def tag_left(value: Any) -> tuple:
    """Wrap a payload as a left-side join input."""
    return (SIDE_LEFT, value)


def tag_right(value: Any) -> tuple:
    """Wrap a payload as a right-side join input."""
    return (SIDE_RIGHT, value)


class WindowedJoinOperator(Operator):
    """Key-equi join of two sides over a sliding time window.

    Input payloads must be ``(side, value)`` pairs (see :func:`tag_left` /
    :func:`tag_right`); upstream operators that feed a join wrap their
    payloads accordingly.  For every input tuple, all opposite-side
    entries of the same key whose event time lies within ``window``
    seconds are matched, and ``(key, combine(left, right))`` is emitted
    per match.

    State value per key: ``{"L": [(event_time, value), ...], "R": [...]}``
    — the two tagged window buffers of the repartition join.
    """

    def __init__(
        self,
        name: str,
        window: float = 10.0,
        combine: Callable[[Any, Any], Any] | None = None,
        **kwargs,
    ):
        if window <= 0:
            raise ConfigurationError(f"join window must be positive: {window}")
        kwargs.setdefault("stateful", True)
        kwargs.setdefault("cost_per_tuple", 2.0e-5)
        kwargs.setdefault("timer_interval", window)
        super().__init__(name, **kwargs)
        self.window = window
        self._combine = combine or (lambda left, right: (left, right))

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        assert ctx.state is not None
        side, value = tup.payload
        if side not in (SIDE_LEFT, SIDE_RIGHT):
            raise ConfigurationError(
                f"join input payload must be tagged L/R, got {side!r}"
            )
        entry = ctx.state.setdefault(tup.key, {SIDE_LEFT: [], SIDE_RIGHT: []})
        event_time = tup.created_at
        horizon = event_time - self.window
        other_side = SIDE_RIGHT if side == SIDE_LEFT else SIDE_LEFT
        # Prune the opposite buffer lazily while scanning for matches.
        kept = []
        for other_time, other_value in entry[other_side]:
            if other_time < horizon:
                continue
            kept.append((other_time, other_value))
            if side == SIDE_LEFT:
                ctx.emit(tup.key, self._combine(value, other_value), weight=tup.weight)
            else:
                ctx.emit(tup.key, self._combine(other_value, value), weight=tup.weight)
        entry[other_side] = kept
        entry[side].append((event_time, value))

    def on_timer(self, ctx: OperatorContext) -> None:
        """Prune expired window entries and drop empty keys."""
        assert ctx.state is not None
        horizon = ctx.now - 2 * self.window
        empty = []
        for key, entry in ctx.state.items():
            if not isinstance(entry, dict) or SIDE_LEFT not in entry:
                continue
            for side in (SIDE_LEFT, SIDE_RIGHT):
                entry[side] = [
                    (time, value) for time, value in entry[side] if time >= horizon
                ]
            if not entry[SIDE_LEFT] and not entry[SIDE_RIGHT]:
                empty.append(key)
        for key in empty:
            ctx.state.pop(key)

    def merge_values(self, left: dict, right: dict) -> dict:
        """Scale-in merge: concatenate both sides' window buffers."""
        merged = {
            SIDE_LEFT: sorted(left[SIDE_LEFT] + right[SIDE_LEFT]),
            SIDE_RIGHT: sorted(left[SIDE_RIGHT] + right[SIDE_RIGHT]),
        }
        return merged


class SideTagger(Operator):
    """Stateless helper that tags everything it forwards with one side.

    Place one in front of each join input when the upstream operators do
    not tag their own payloads.
    """

    def __init__(self, name: str, side: str, **kwargs):
        if side not in (SIDE_LEFT, SIDE_RIGHT):
            raise ConfigurationError(f"side must be L or R: {side!r}")
        kwargs.setdefault("stateful", False)
        kwargs.setdefault("cost_per_tuple", 2.0e-6)
        super().__init__(name, **kwargs)
        self.side = side

    def on_tuple(self, tup: Tuple, ctx: OperatorContext) -> None:
        ctx.emit(tup.key, (self.side, tup.payload), weight=tup.weight)
