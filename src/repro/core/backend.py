"""Pluggable tiered state backends (§3.3 spill / persist, unified).

Every stateful operator instance keeps its processing state θ behind a
:class:`StateBackend`.  The backend decides *where entries live* — pure
memory, a bounded hot tier with a disk spill tier, or a write-through
external store — while the state-management primitives (checkpoint,
partition, extract, merge, restore) keep operating on the same
:class:`ProcessingState` protocol.  Three implementations:

* :class:`MemoryBackend` — today's copy-on-write in-memory dict.  The
  default, and deliberately a pass-through: it returns exactly what the
  operator's ``initial_state()`` built and restores exactly the way the
  runtime always did, so default behaviour is bit-identical.
* :class:`SpillBackend` — wraps operator state in a
  :class:`SpillableState`: the hot tier is bounded by
  ``max_hot_entries``, cold entries spill to a simulated disk tier, and
  every spill/fault/cold read is charged to the hosting VM through the
  ``io_cost`` callback.
* :class:`ExternalBackend` — a SpillBackend that additionally flushes
  every checkpoint cut (entries + τ vector + output clock) through to a
  run-wide :class:`ExternalStateStore`.  The external tier survives all
  VM deaths, so it serves as a recovery source of last resort when the
  failed operator's backup VM died too (see
  ``scaling/reconfig.py``); because each flush is a consistent
  checkpoint cut, a last-resort restore replays and dedups exactly like
  a restore from backup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.config import (
    STATE_BACKEND_EXTERNAL,
    STATE_BACKEND_MEMORY,
    STATE_BACKEND_SPILL,
    StateBackendConfig,
)
from repro.core.spill import ExternalStateStore, SpillableState
from repro.core.state import ProcessingState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.checkpoint import EpochCut
    from repro.core.operator import Operator


class StateBackend:
    """Where an operator's state entries live, and what access costs.

    The runtime talks to state through this seam at exactly three
    points: building the initial state, re-materialising state from a
    restored checkpoint, and the post-checkpoint hook (used by the
    external tier to flush the cut).  Everything else — reads, writes,
    snapshots, chunk extraction — goes through the
    :class:`ProcessingState` protocol of the state the backend built.
    """

    kind = STATE_BACKEND_MEMORY

    def initial_state(self, operator: "Operator") -> ProcessingState:
        """Build the state a fresh instance of ``operator`` starts with."""
        raise NotImplementedError

    def restore(self, checkpoint_state: ProcessingState) -> ProcessingState:
        """Re-materialise backend-managed state from a checkpoint's state."""
        raise NotImplementedError

    def on_checkpoint(self, cut: "EpochCut") -> None:
        """Hook invoked after every checkpoint cut (default: nothing).

        Every backend receives the same :class:`EpochCut` descriptor —
        the checkpoint payload plus epoch/τ/out_clock/fence-floor context
        — so implementations never take positions/clock/seq positionally
        (the signature drift the EpochCut redesign removed)."""

    def tier_stats(self, state: ProcessingState) -> dict[str, int]:
        """Per-tier entry counts and I/O counters for telemetry."""
        if isinstance(state, SpillableState):
            return {
                "hot_entries": state.hot_entries,
                "cold_entries": state.spilled_entries,
                "peak_hot_entries": state.peak_hot_entries,
                "spills": state.spill_count,
                "faults": state.fault_count,
                "cold_reads": state.cold_read_count,
            }
        return {
            "hot_entries": len(state),
            "cold_entries": 0,
            "peak_hot_entries": len(state),
            "spills": 0,
            "faults": 0,
            "cold_reads": 0,
        }


class MemoryBackend(StateBackend):
    """The in-memory default: a pass-through around today's behaviour."""

    kind = STATE_BACKEND_MEMORY

    def initial_state(self, operator: "Operator") -> ProcessingState:
        return operator.initial_state()

    def restore(self, checkpoint_state: ProcessingState) -> ProcessingState:
        # Snapshot isolates the live state from the stored checkpoint —
        # identical to the pre-backend restore path.
        return checkpoint_state.snapshot()


class SpillBackend(StateBackend):
    """Bounded hot tier + disk spill tier, I/O charged to the VM."""

    kind = STATE_BACKEND_SPILL

    def __init__(
        self,
        config: StateBackendConfig,
        io_cost: Callable[[float], None] | None = None,
    ) -> None:
        self.config = config
        self.io_cost = io_cost

    def initial_state(self, operator: "Operator") -> ProcessingState:
        base = operator.initial_state()
        return self._wrap(base)

    def restore(self, checkpoint_state: ProcessingState) -> ProcessingState:
        # Isolate from the stored checkpoint first (plain, flat), then
        # re-adopt entry by entry so the LRU/spill bookkeeping runs and
        # the restore pays its disk writes for everything beyond the hot
        # bound — the hot tier never exceeds ``max_hot_entries``.
        return self._wrap(checkpoint_state.snapshot())

    def _wrap(self, flat: ProcessingState) -> SpillableState:
        state = SpillableState(
            positions=flat.positions,
            out_clock=flat.out_clock,
            max_hot_entries=self.config.max_hot_entries,
            io_seconds_per_entry=self.config.io_seconds_per_entry,
            io_cost=self.io_cost,
        )
        for key, value in flat.entries.items():
            state[key] = value
        return state


class ExternalBackend(SpillBackend):
    """Spill tiering plus write-through persist of every checkpoint cut.

    Each checkpoint flush persists the cut's entries (incremental cuts
    persist the delta and delete the cut's deleted keys), then records
    the cut's τ vector and output clock as the slot's restore metadata.
    The flush cost is charged to the VM like spill I/O.
    """

    kind = STATE_BACKEND_EXTERNAL

    def __init__(
        self,
        config: StateBackendConfig,
        store: ExternalStateStore,
        op_name: str,
        slot_uid: int,
        io_cost: Callable[[float], None] | None = None,
        epoch: int = 0,
    ) -> None:
        super().__init__(config, io_cost)
        self.store = store
        self.op_name = op_name
        self.slot_uid = slot_uid
        #: Fencing epoch stamped on every write-through flush, so the
        #: store can reject flushes from a superseded (zombie) instance.
        self.epoch = epoch
        #: Keys this slot has persisted and not yet deleted, so a full
        #: flush can reconcile deletions without scanning the store.
        self._persisted: set[Any] = set()

    def restore(self, checkpoint_state: ProcessingState) -> ProcessingState:
        state = super().restore(checkpoint_state)
        # Entries restored from a checkpoint are already in the external
        # tier (the dead instance flushed them under the same slot uid).
        self._persisted = set(state.keys())
        return state

    def on_checkpoint(self, cut: "EpochCut") -> None:
        store = self.store
        writes = 0
        # The EpochCut delegates the payload's entries/deletes/τ/clock;
        # the *fencing* epoch stamped on store writes stays this
        # backend's own (bumped by fence notices, not per snapshot).
        if cut.incremental:
            for key, value in cut.state.entries.items():
                store.persist(
                    self.op_name,
                    key,
                    value,
                    slot_uid=self.slot_uid,
                    epoch=self.epoch,
                )
                self._persisted.add(key)
                writes += 1
            for key in cut.deleted_keys:
                if store.delete(
                    self.op_name, key, slot_uid=self.slot_uid, epoch=self.epoch
                ):
                    writes += 1
                self._persisted.discard(key)
        else:
            current = set(cut.state.entries)
            for key, value in cut.state.entries.items():
                store.persist(
                    self.op_name,
                    key,
                    value,
                    slot_uid=self.slot_uid,
                    epoch=self.epoch,
                )
                writes += 1
            for key in self._persisted - current:
                if store.delete(
                    self.op_name, key, slot_uid=self.slot_uid, epoch=self.epoch
                ):
                    writes += 1
            self._persisted = current
        store.save_meta(
            self.op_name,
            self.slot_uid,
            cut.positions,
            cut.out_clock,
            seq=cut.seq,
            epoch=self.epoch,
        )
        writes += 1
        if self.io_cost is not None and writes:
            self.io_cost(writes * store.write_seconds_per_entry)


def backend_for(
    config: StateBackendConfig,
    *,
    op_name: str,
    slot_uid: int,
    is_source: bool = False,
    is_sink: bool = False,
    io_cost: Callable[[float], None] | None = None,
    external_store: ExternalStateStore | None = None,
    epoch: int = 0,
) -> StateBackend:
    """Select the backend one instance's state lives behind.

    Sources and sinks always stay in memory (their state is positions
    and buffers, not keyed entries), as do operators excluded by
    ``config.operators``.
    """
    tiered = config.kind in (STATE_BACKEND_SPILL, STATE_BACKEND_EXTERNAL)
    applies = (
        tiered
        and not is_source
        and not is_sink
        and (config.operators is None or op_name in config.operators)
    )
    if not applies:
        return MemoryBackend()
    if config.kind == STATE_BACKEND_SPILL:
        return SpillBackend(config, io_cost)
    if external_store is None:
        raise ValueError("external state backend requires an ExternalStateStore")
    return ExternalBackend(
        config, external_store, op_name, slot_uid, io_cost=io_cost, epoch=epoch
    )
