"""State partitioning (Algorithm 2) and merging (scale in, §3.3).

These are the pure (no simulator, no network) pieces of the partitioning
machinery: splitting the key intervals owned by an operator partition,
splitting a checkpoint's processing state along those intervals, and the
inverse merge used for scale in.  The runtime coordinator drives them and
adds the CPU/network costs.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.core.checkpoint import Checkpoint
from repro.core.state import KeyInterval, OutputBuffer, ProcessingState
from repro.core.tuples import stable_hash
from repro.errors import PartitionError


def split_interval_groups(
    owned: list[KeyInterval],
    parts: int,
    guide_positions: Iterable[int] | None = None,
) -> list[list[KeyInterval]]:
    """Split the key range owned by a partition into ``parts`` groups.

    A partition normally owns one contiguous interval, but scale in can
    leave it owning several; the split therefore works on the concatenated
    width of all owned intervals.  Returns one (non-empty) interval group
    per part; groups are disjoint and jointly tile ``owned``.

    ``guide_positions`` optionally carries observed key positions so the
    split can balance load instead of width (the paper's "the key
    distribution can be used to guide the split").  The guide is honoured
    whether the partition owns one interval or several: multi-interval
    owners (common after scale-in merges) map their positions into the
    concatenated key space, cut at entry quantiles there, and map the
    cuts back — falling back to the width split only when the guide has
    fewer usable positions than parts.
    """
    if parts < 1:
        raise PartitionError(f"cannot split into {parts} parts")
    if not owned:
        raise PartitionError("no key intervals to split")
    if len(owned) == 1:
        if guide_positions is not None:
            intervals = owned[0].split_by_positions(parts, guide_positions)
        else:
            intervals = owned[0].split(parts)
        return [[interval] for interval in intervals]

    ordered = sorted(owned, key=lambda i: i.lo)
    total_width = sum(i.width for i in ordered)
    if parts > total_width:
        raise PartitionError(
            f"owned width {total_width} cannot produce {parts} parts"
        )
    boundaries = None
    if guide_positions is not None:
        boundaries = _guided_boundaries(ordered, total_width, parts, guide_positions)
    if boundaries is None:
        # Even width split of the concatenated space.
        boundaries = [
            (total_width * (part + 1)) // parts for part in range(parts)
        ]
    groups: list[list[KeyInterval]] = [[] for _ in range(parts)]
    # Walk the concatenated space, cutting at the chosen boundaries.
    part_index = 0
    consumed = 0
    for interval in ordered:
        cursor = interval.lo
        while cursor < interval.hi:
            boundary = boundaries[part_index]
            take = min(interval.hi - cursor, boundary - consumed)
            if take > 0:
                groups[part_index].append(KeyInterval(cursor, cursor + take))
                cursor += take
                consumed += take
            if consumed >= boundary and part_index < parts - 1:
                part_index += 1
    if any(not group for group in groups):
        raise PartitionError("split produced an empty part")
    return groups


def _guided_boundaries(
    ordered: list[KeyInterval],
    total_width: int,
    parts: int,
    guide_positions: Iterable[int],
) -> list[int] | None:
    """Quantile cut points in concatenated-space coordinates, or None.

    Mirrors :meth:`KeyInterval.split_by_positions` for a partition that
    owns several intervals: each guide position inside an owned interval
    maps to ``offset_of(interval) + (position - interval.lo)``; cuts land
    at entry-count quantiles of the mapped positions.  Returns None (the
    caller falls back to the width split) when fewer positions than
    ``parts`` fall inside the owned range or the quantile cuts collapse.
    """
    offsets: list[int] = []
    offset = 0
    for interval in ordered:
        offsets.append(offset)
        offset += interval.width
    inside: list[int] = []
    for position in guide_positions:
        for interval, base in zip(ordered, offsets):
            if position in interval:
                inside.append(base + (position - interval.lo))
                break
    if len(inside) < parts:
        return None
    inside.sort()
    boundaries: list[int] = []
    previous = 0
    for part in range(1, parts):
        cut = inside[(len(inside) * part) // parts]
        # Guard against duplicate cut points collapsing a part.
        cut = max(cut, previous + 1)
        if cut >= total_width:
            return None
        boundaries.append(cut)
        previous = cut
    boundaries.append(total_width)
    return boundaries


def position_in_groups(position: int, groups: list[list[KeyInterval]]) -> int:
    """Index of the group containing a key-space position."""
    for index, group in enumerate(groups):
        for interval in group:
            if position in interval:
                return index
    raise PartitionError(f"position {position} not covered by any group")


def partition_processing_state(
    state: ProcessingState, groups: list[list[KeyInterval]]
) -> list[ProcessingState]:
    """Split processing state θ across interval groups (Algorithm 2 l.5-6).

    Each part receives the entries whose key hashes into its group; the τ
    vector and output clock are copied to every part.
    """
    parts = [
        ProcessingState(positions=state.positions, out_clock=state.out_clock)
        for _ in groups
    ]
    # Parts share the source's value objects; copy-on-write isolates every
    # holder on its first mutation (see ProcessingState.share_all).
    for key, value in state.share_all().items():
        index = position_in_groups(stable_hash(key), groups)
        parts[index].entries[key] = value
    return parts


def partition_checkpoint(
    checkpoint: Checkpoint,
    groups: list[list[KeyInterval]],
    new_slot_uids: list[int],
) -> list[Checkpoint]:
    """Split a backed-up checkpoint into per-partition checkpoints.

    Follows Algorithm 2: processing state is split by key, τ is copied to
    each partition, and the buffer state is assigned to the first
    partition only (line 7) — buffered output tuples are replayed to
    downstream operators once, not once per new partition.
    """
    if len(groups) != len(new_slot_uids):
        raise PartitionError(
            f"{len(groups)} interval groups for {len(new_slot_uids)} slots"
        )
    states = partition_processing_state(checkpoint.state, groups)
    parts: list[Checkpoint] = []
    for index, (state, slot_uid) in enumerate(zip(states, new_slot_uids)):
        buffers = (
            {name: buf.snapshot() for name, buf in checkpoint.buffers.items()}
            if index == 0
            else {}
        )
        parts.append(
            Checkpoint(
                op_name=checkpoint.op_name,
                slot_uid=slot_uid,
                state=state,
                buffers=buffers,
                taken_at=checkpoint.taken_at,
                seq=checkpoint.seq,
            )
        )
    return parts


def merge_checkpoints(
    left: Checkpoint,
    right: Checkpoint,
    merge_value: Callable | None = None,
) -> Checkpoint:
    """Merge two partitions' checkpoints into one (scale in, §3.3)."""
    if left.op_name != right.op_name:
        raise PartitionError(
            f"cannot merge checkpoints of {left.op_name} and {right.op_name}"
        )
    state = left.state.merge(right.state, merge_value)
    buffers: dict[str, OutputBuffer] = {
        name: buf.snapshot() for name, buf in left.buffers.items()
    }
    for name, buf in right.buffers.items():
        if name in buffers:
            for dest in buf.destinations():
                for tup in buf.tuples_for(dest):
                    buffers[name].append(dest, tup)
        else:
            buffers[name] = buf.snapshot()
    return Checkpoint(
        op_name=left.op_name,
        slot_uid=left.slot_uid,
        state=state,
        buffers=buffers,
        taken_at=max(left.taken_at, right.taken_at),
        seq=max(left.seq, right.seq),
    )
