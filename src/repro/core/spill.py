"""State spilling and external persistence (§3.3 extensions).

Beyond the minimum primitive set, the paper sketches two further state
operations:

* **spill** — "for operators with large state sizes, a spill operation
  can temporarily store state on disk, freeing memory resources" [19];
* **persist** — "part of the operator state can be supported by external
  storage through a persist operation" [3].

:class:`SpillableState` is a drop-in :class:`ProcessingState` whose cold
entries can be pushed to a (simulated) disk tier; reads transparently
fault entries back in, and an ``io_cost`` callback lets the runtime
charge the disk time to the hosting VM.  Checkpoints cover both tiers, so
all scale-out/recovery machinery keeps working on spilled state.

:class:`ExternalStateStore` models the persist operation: a write-through
copy of selected entries in reliable external storage, usable as a
recovery source of last resort when every backup died.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.core.state import KeyInterval, ProcessingState, stable_hash
from repro.errors import StateError

#: Default simulated disk cost per entry moved (seconds of I/O).
DEFAULT_SPILL_IO_SECONDS = 5e-6


class SpillableState(ProcessingState):
    """Processing state with a hot (memory) and a cold (disk) tier.

    ``max_hot_entries`` bounds the memory tier; accesses keep it LRU-ish
    by re-inserting touched keys.  ``io_cost(seconds)`` is invoked for
    every spill/fault so the runtime can charge the VM.
    """

    def __init__(
        self,
        entries: dict[Any, Any] | None = None,
        positions: dict[int, int] | None = None,
        out_clock: int = 0,
        max_hot_entries: int = 100_000,
        io_seconds_per_entry: float = DEFAULT_SPILL_IO_SECONDS,
        io_cost: Callable[[float], None] | None = None,
    ) -> None:
        super().__init__(entries, positions, out_clock)
        if max_hot_entries < 1:
            raise StateError(f"max_hot_entries must be >= 1: {max_hot_entries}")
        self.entries = OrderedDict(self.entries)
        self.max_hot_entries = max_hot_entries
        self.io_seconds_per_entry = io_seconds_per_entry
        self._io_cost = io_cost
        self._spilled: dict[Any, Any] = {}
        self.spill_count = 0
        self.fault_count = 0
        #: Cold-tier entries read for checkpoints/extraction *without*
        #: faulting them into the hot tier (charged, but not faults).
        self.cold_read_count = 0
        #: High-water mark of the hot (memory) tier — the "peak resident
        #: entries" a real engine would need RAM for.
        self.peak_hot_entries = len(self.entries)

    # ------------------------------------------------------------- access

    def __contains__(self, key: Any) -> bool:
        return key in self.entries or key in self._spilled

    def __getitem__(self, key: Any) -> Any:
        if key in self.entries:
            self.entries.move_to_end(key)
            value = self.entries[key]
        elif key in self._spilled:
            value = self._fault_in(key)
        else:
            raise KeyError(key)
        if self.dirty is not None and isinstance(value, (dict, list, set)):
            self.dirty.add(key)
        return value

    def get(self, key: Any, default: Any = None) -> Any:
        """Read a key from either tier, with a default."""
        if key in self:
            return self[key]
        return default

    def setdefault(self, key: Any, default: Any) -> Any:
        """Read-or-insert across both tiers."""
        if key in self:
            return self[key]
        self[key] = default
        return default

    def pop(self, key: Any, default: Any = None) -> Any:
        """Remove a key from whichever tier holds it."""
        if self.dirty is not None and key in self:
            self.dirty.add(key)
        if key in self._spilled:
            return self._spilled.pop(key)
        return self.entries.pop(key, default)

    def __setitem__(self, key: Any, value: Any) -> None:
        if self.dirty is not None:
            self.dirty.add(key)
        self._spilled.pop(key, None)
        self.entries[key] = value
        self.entries.move_to_end(key)
        if len(self.entries) > self.peak_hot_entries:
            self.peak_hot_entries = len(self.entries)
        if len(self.entries) > self.max_hot_entries:
            self.spill(len(self.entries) - self.max_hot_entries)

    def bulk_apply(self, grouped, apply) -> None:
        """Grouped bulk-apply, one tiered access per key.

        Tier movement (LRU touch, fault-in, spill thresholds) must run
        for every key, so unlike the base class nothing is hoisted —
        each key goes through the instrumented accessors.
        """
        for key, addition in grouped.items():
            if key in self:
                value = self[key]
                new = apply(value, addition)
                if new is not value:
                    self[key] = new
            else:
                self[key] = apply(None, addition)

    def bulk_merge_buckets(self, grouped) -> None:
        """Bucket-dict bulk merge, one tiered access per key (see
        :meth:`bulk_apply` for why nothing is hoisted here)."""
        for key, additions in grouped.items():
            if key in self:
                buckets = self[key]
                get = buckets.get
                for index, weight in additions.items():
                    buckets[index] = get(index, 0) + weight
                self[key] = buckets
            else:
                self[key] = additions

    def bulk_bucket_add(self, index, keys, weights) -> None:
        """Single-window bucket adds, one tiered access per row."""
        for key, weight in zip(keys, weights):
            if key in self:
                buckets = self[key]
                buckets[index] = buckets.get(index, 0) + weight
                self[key] = buckets
            else:
                self[key] = {index: weight}

    def keys(self):
        """All keys, hot tier first."""
        return list(self.entries.keys()) + list(self._spilled.keys())

    def items(self):
        """Iterate (key, value) pairs across both tiers."""
        yield from self.entries.items()
        yield from self._spilled.items()

    def adopt(self, key: Any, value: Any) -> None:
        """Snapshots of a spillable state are eager copies (no
        aliasing), and inserts must run the LRU/spill bookkeeping — so
        adoption is a plain write here."""
        self[key] = value

    def share_all(self):
        """Both tiers flattened; spillable snapshots are eager copies, so
        handing out the raw values never aliases a snapshot."""
        return dict(self.items())

    def __len__(self) -> int:
        return len(self.entries) + len(self._spilled)

    # -------------------------------------------------------------- tiers

    @property
    def hot_entries(self) -> int:
        return len(self.entries)

    @property
    def spilled_entries(self) -> int:
        return len(self._spilled)

    def spill(self, count: int | None = None) -> int:
        """Move the ``count`` least-recently-used entries to disk."""
        if count is None:
            count = max(0, len(self.entries) - self.max_hot_entries)
        moved = 0
        while moved < count and self.entries:
            key, value = self.entries.popitem(last=False)
            self._spilled[key] = value
            moved += 1
        if moved:
            self.spill_count += moved
            self._charge(moved)
        return moved

    def _fault_in(self, key: Any) -> Any:
        value = self._spilled.pop(key)
        self.entries[key] = value
        if len(self.entries) > self.peak_hot_entries:
            self.peak_hot_entries = len(self.entries)
        self.fault_count += 1
        self._charge(1)
        if len(self.entries) > self.max_hot_entries:
            self.spill(len(self.entries) - self.max_hot_entries)
        return value

    def _charge(self, entries: int) -> None:
        if self._io_cost is not None:
            self._io_cost(entries * self.io_seconds_per_entry)

    # ----------------------------------------------- state-management ops

    def raw_get(self, key, default=None):
        """Read either tier without LRU movement, marking or I/O cost."""
        if key in self.entries:
            return self.entries[key]
        return self._spilled.get(key, default)

    def snapshot(self) -> ProcessingState:
        """Checkpoints cover both tiers (flattened to a plain state).

        Cold entries are read straight from the disk tier — they are
        *not* faulted into the hot tier, so the peak resident (hot)
        entry count stays bounded by ``max_hot_entries`` no matter how
        large the cold tier is — but the disk reads are real: they are
        charged through ``io_cost`` and reported in ``cold_read_count``.
        """
        flat = ProcessingState(positions=self.positions, out_clock=self.out_clock)
        for key, value in self.items():
            flat.entries[key] = _copy(value)
        cold = len(self._spilled)
        if cold:
            self.cold_read_count += cold
            self._charge(cold)
        return flat

    def extract(self, intervals: list[KeyInterval]) -> ProcessingState:
        """Remove and return the entries hashing into ``intervals``.

        Unlike the in-memory base class, the cold tier is scanned too —
        a chunk extraction during fluid migration moves matching cold
        entries straight from disk into the (plain, chunk-sized) result
        state without faulting them through the hot tier, so migrating a
        spilled operator never balloons its memory footprint.  Only the
        chunk's own cold entries are charged as disk reads; unrelated
        cold keys are untouched.
        """
        taken = ProcessingState(positions=self.positions, out_clock=self.out_clock)
        for key in list(self.entries):
            position = stable_hash(key)
            if any(position in interval for interval in intervals):
                taken.entries[key] = self.entries.pop(key)
                self._private.discard(key)
                if self.dirty is not None:
                    self.dirty.add(key)
        cold_moved = 0
        for key in list(self._spilled):
            position = stable_hash(key)
            if any(position in interval for interval in intervals):
                taken.entries[key] = self._spilled.pop(key)
                cold_moved += 1
                if self.dirty is not None:
                    self.dirty.add(key)
        if cold_moved:
            self.cold_read_count += cold_moved
            self._charge(cold_moved)
        return taken

    def estimated_bytes(self, bytes_per_entry: float) -> float:
        return len(self) * bytes_per_entry


def _copy(value: Any) -> Any:
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    if isinstance(value, set):
        return set(value)
    return value


class ExternalStateStore:
    """Reliable external storage for the persist operation.

    A write-through mirror of selected state entries, keyed by
    ``(op_name, key)``.  Unlike backup stores it survives any VM failure;
    the trade-off is a per-write cost, charged through ``write_cost``.
    """

    def __init__(
        self,
        write_seconds_per_entry: float = 2e-5,
        write_cost: Callable[[float], None] | None = None,
        read_seconds_per_entry: float = 2e-5,
        read_cost: Callable[[float], None] | None = None,
    ) -> None:
        self._data: dict[tuple[str, Any], Any] = {}
        #: Last writer (slot uid) per entry, so a stale flush from a slot
        #: that no longer owns a key cannot delete the new owner's write.
        self._writer: dict[tuple[str, Any], int | None] = {}
        #: Fencing floor per (op_name, slot_uid): writes stamped with an
        #: epoch below the floor are rejected.  Raised by
        #: :meth:`fence` when a recovery replaces a slot's instance, so
        #: a zombie predecessor's write-through flushes — possibly still
        #: in flight — can never clobber the successor's state.
        self._epoch_floor: dict[tuple[str, int], int] = {}
        #: Consistent-cut metadata per (op_name, slot_uid): the τ vector,
        #: output clock and checkpoint seq of the cut whose entries were
        #: last flushed — what makes a restore-of-last-resort replayable
        #: with exactly-once dedup, like any other checkpoint.
        self._meta: dict[tuple[str, int], tuple[dict[int, int], int, int]] = {}
        self.write_seconds_per_entry = write_seconds_per_entry
        self.read_seconds_per_entry = read_seconds_per_entry
        self._write_cost = write_cost
        self._read_cost = read_cost
        self.writes = 0
        self.reads = 0
        #: Writes rejected because their epoch stamp was below the floor.
        self.fenced_writes = 0

    def fence(self, op_name: str, slot_uid: int, min_epoch: int) -> None:
        """Raise the write floor for one slot: only writes stamped with
        ``min_epoch`` or later are accepted from now on."""
        key = (op_name, slot_uid)
        if min_epoch > self._epoch_floor.get(key, 0):
            self._epoch_floor[key] = min_epoch

    def _fenced(
        self, op_name: str, slot_uid: int | None, epoch: int | None
    ) -> bool:
        if epoch is None or slot_uid is None:
            return False  # unstamped writer (engine-internal, tests)
        if epoch < self._epoch_floor.get((op_name, slot_uid), 0):
            self.fenced_writes += 1
            return True
        return False

    def persist(
        self,
        op_name: str,
        key: Any,
        value: Any,
        slot_uid: int | None = None,
        epoch: int | None = None,
    ) -> None:
        """Write-through one entry to external storage."""
        if self._fenced(op_name, slot_uid, epoch):
            return
        self._data[(op_name, key)] = _copy(value)
        self._writer[(op_name, key)] = slot_uid
        self.writes += 1
        if self._write_cost is not None:
            self._write_cost(self.write_seconds_per_entry)

    def delete(
        self,
        op_name: str,
        key: Any,
        slot_uid: int | None = None,
        epoch: int | None = None,
    ) -> bool:
        """Remove one entry; a ``slot_uid`` only deletes its own writes."""
        if self._fenced(op_name, slot_uid, epoch):
            return False
        full_key = (op_name, key)
        if full_key not in self._data:
            return False
        if slot_uid is not None and self._writer.get(full_key) != slot_uid:
            return False
        del self._data[full_key]
        self._writer.pop(full_key, None)
        self.writes += 1
        if self._write_cost is not None:
            self._write_cost(self.write_seconds_per_entry)
        return True

    def save_meta(
        self,
        op_name: str,
        slot_uid: int,
        positions: dict[int, int],
        out_clock: int,
        seq: int = 0,
        epoch: int | None = None,
    ) -> None:
        """Record the τ vector / clock / seq of a flushed checkpoint."""
        if self._fenced(op_name, slot_uid, epoch):
            return
        self._meta[(op_name, slot_uid)] = (dict(positions), out_clock, seq)
        self.writes += 1
        if self._write_cost is not None:
            self._write_cost(self.write_seconds_per_entry)

    def load_meta(
        self, op_name: str, slot_uid: int
    ) -> tuple[dict[int, int], int, int] | None:
        """The (positions, out_clock, seq) of a slot's last flush, if any."""
        meta = self._meta.get((op_name, slot_uid))
        if meta is None:
            return None
        self.reads += 1
        positions, out_clock, seq = meta
        return dict(positions), out_clock, seq

    def lookup(self, op_name: str, key: Any, default: Any = None) -> Any:
        """Read one persisted entry."""
        self.reads += 1
        if self._read_cost is not None:
            self._read_cost(self.read_seconds_per_entry)
        return self._data.get((op_name, key), default)

    def restore_all(self, op_name: str) -> dict[Any, Any]:
        """Recovery of last resort: every persisted entry of an operator."""
        restored = {
            key: _copy(value)
            for (name, key), value in self._data.items()
            if name == op_name
        }
        self.reads += len(restored)
        if self._read_cost is not None and restored:
            self._read_cost(len(restored) * self.read_seconds_per_entry)
        return restored

    def __len__(self) -> int:
        return len(self._data)
