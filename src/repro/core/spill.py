"""State spilling and external persistence (§3.3 extensions).

Beyond the minimum primitive set, the paper sketches two further state
operations:

* **spill** — "for operators with large state sizes, a spill operation
  can temporarily store state on disk, freeing memory resources" [19];
* **persist** — "part of the operator state can be supported by external
  storage through a persist operation" [3].

:class:`SpillableState` is a drop-in :class:`ProcessingState` whose cold
entries can be pushed to a (simulated) disk tier; reads transparently
fault entries back in, and an ``io_cost`` callback lets the runtime
charge the disk time to the hosting VM.  Checkpoints cover both tiers, so
all scale-out/recovery machinery keeps working on spilled state.

:class:`ExternalStateStore` models the persist operation: a write-through
copy of selected entries in reliable external storage, usable as a
recovery source of last resort when every backup died.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from repro.core.state import ProcessingState
from repro.errors import StateError

#: Default simulated disk cost per entry moved (seconds of I/O).
DEFAULT_SPILL_IO_SECONDS = 5e-6


class SpillableState(ProcessingState):
    """Processing state with a hot (memory) and a cold (disk) tier.

    ``max_hot_entries`` bounds the memory tier; accesses keep it LRU-ish
    by re-inserting touched keys.  ``io_cost(seconds)`` is invoked for
    every spill/fault so the runtime can charge the VM.
    """

    def __init__(
        self,
        entries: dict[Any, Any] | None = None,
        positions: dict[int, int] | None = None,
        out_clock: int = 0,
        max_hot_entries: int = 100_000,
        io_seconds_per_entry: float = DEFAULT_SPILL_IO_SECONDS,
        io_cost: Callable[[float], None] | None = None,
    ) -> None:
        super().__init__(entries, positions, out_clock)
        if max_hot_entries < 1:
            raise StateError(f"max_hot_entries must be >= 1: {max_hot_entries}")
        self.entries = OrderedDict(self.entries)
        self.max_hot_entries = max_hot_entries
        self.io_seconds_per_entry = io_seconds_per_entry
        self._io_cost = io_cost
        self._spilled: dict[Any, Any] = {}
        self.spill_count = 0
        self.fault_count = 0

    # ------------------------------------------------------------- access

    def __contains__(self, key: Any) -> bool:
        return key in self.entries or key in self._spilled

    def __getitem__(self, key: Any) -> Any:
        if key in self.entries:
            self.entries.move_to_end(key)
            value = self.entries[key]
        elif key in self._spilled:
            value = self._fault_in(key)
        else:
            raise KeyError(key)
        if self.dirty is not None and isinstance(value, (dict, list, set)):
            self.dirty.add(key)
        return value

    def get(self, key: Any, default: Any = None) -> Any:
        """Read a key from either tier, with a default."""
        if key in self:
            return self[key]
        return default

    def setdefault(self, key: Any, default: Any) -> Any:
        """Read-or-insert across both tiers."""
        if key in self:
            return self[key]
        self[key] = default
        return default

    def pop(self, key: Any, default: Any = None) -> Any:
        """Remove a key from whichever tier holds it."""
        if self.dirty is not None and key in self:
            self.dirty.add(key)
        if key in self._spilled:
            return self._spilled.pop(key)
        return self.entries.pop(key, default)

    def __setitem__(self, key: Any, value: Any) -> None:
        if self.dirty is not None:
            self.dirty.add(key)
        self._spilled.pop(key, None)
        self.entries[key] = value
        self.entries.move_to_end(key)
        if len(self.entries) > self.max_hot_entries:
            self.spill(len(self.entries) - self.max_hot_entries)

    def keys(self):
        """All keys, hot tier first."""
        return list(self.entries.keys()) + list(self._spilled.keys())

    def items(self):
        """Iterate (key, value) pairs across both tiers."""
        yield from self.entries.items()
        yield from self._spilled.items()

    def adopt(self, key: Any, value: Any) -> None:
        """Snapshots of a spillable state are eager copies (no
        aliasing), and inserts must run the LRU/spill bookkeeping — so
        adoption is a plain write here."""
        self[key] = value

    def share_all(self):
        """Both tiers flattened; spillable snapshots are eager copies, so
        handing out the raw values never aliases a snapshot."""
        return dict(self.items())

    def __len__(self) -> int:
        return len(self.entries) + len(self._spilled)

    # -------------------------------------------------------------- tiers

    @property
    def hot_entries(self) -> int:
        return len(self.entries)

    @property
    def spilled_entries(self) -> int:
        return len(self._spilled)

    def spill(self, count: int | None = None) -> int:
        """Move the ``count`` least-recently-used entries to disk."""
        if count is None:
            count = max(0, len(self.entries) - self.max_hot_entries)
        moved = 0
        while moved < count and self.entries:
            key, value = self.entries.popitem(last=False)
            self._spilled[key] = value
            moved += 1
        if moved:
            self.spill_count += moved
            self._charge(moved)
        return moved

    def _fault_in(self, key: Any) -> Any:
        value = self._spilled.pop(key)
        self.entries[key] = value
        self.fault_count += 1
        self._charge(1)
        if len(self.entries) > self.max_hot_entries:
            self.spill(len(self.entries) - self.max_hot_entries)
        return value

    def _charge(self, entries: int) -> None:
        if self._io_cost is not None:
            self._io_cost(entries * self.io_seconds_per_entry)

    # ----------------------------------------------- state-management ops

    def raw_get(self, key, default=None):
        """Read either tier without LRU movement, marking or I/O cost."""
        if key in self.entries:
            return self.entries[key]
        return self._spilled.get(key, default)

    def snapshot(self) -> ProcessingState:
        """Checkpoints cover both tiers (flattened to a plain state)."""
        flat = ProcessingState(positions=self.positions, out_clock=self.out_clock)
        for key, value in self.items():
            flat.entries[key] = _copy(value)
        return flat

    def estimated_bytes(self, bytes_per_entry: float) -> float:
        return len(self) * bytes_per_entry


def _copy(value: Any) -> Any:
    if isinstance(value, dict):
        return dict(value)
    if isinstance(value, list):
        return list(value)
    if isinstance(value, set):
        return set(value)
    return value


class ExternalStateStore:
    """Reliable external storage for the persist operation.

    A write-through mirror of selected state entries, keyed by
    ``(op_name, key)``.  Unlike backup stores it survives any VM failure;
    the trade-off is a per-write cost, charged through ``write_cost``.
    """

    def __init__(
        self,
        write_seconds_per_entry: float = 2e-5,
        write_cost: Callable[[float], None] | None = None,
    ) -> None:
        self._data: dict[tuple[str, Any], Any] = {}
        self.write_seconds_per_entry = write_seconds_per_entry
        self._write_cost = write_cost
        self.writes = 0
        self.reads = 0

    def persist(self, op_name: str, key: Any, value: Any) -> None:
        """Write-through one entry to external storage."""
        self._data[(op_name, key)] = _copy(value)
        self.writes += 1
        if self._write_cost is not None:
            self._write_cost(self.write_seconds_per_entry)

    def lookup(self, op_name: str, key: Any, default: Any = None) -> Any:
        """Read one persisted entry."""
        self.reads += 1
        return self._data.get((op_name, key), default)

    def restore_all(self, op_name: str) -> dict[Any, Any]:
        """Recovery of last resort: every persisted entry of an operator."""
        return {
            key: _copy(value)
            for (name, key), value in self._data.items()
            if name == op_name
        }

    def __len__(self) -> int:
        return len(self._data)
