"""Core data model and state management primitives of the paper."""

from repro.core.analysis import CostModel, OperatorEstimate, critical_path, to_dot, to_networkx
from repro.core.backend import (
    ExternalBackend,
    MemoryBackend,
    SpillBackend,
    StateBackend,
    backend_for,
)
from repro.core.checkpoint import (
    BackupStore,
    Checkpoint,
    Checkpointer,
    EpochCut,
    RestorePlan,
    as_checkpoint,
    from_external_store,
    materialize_increment,
)
from repro.core.execution import ExecutionGraph, Slot
from repro.core.join import (
    SIDE_LEFT,
    SIDE_RIGHT,
    SideTagger,
    WindowedJoinOperator,
    tag_left,
    tag_right,
)
from repro.core.operator import LambdaOperator, Operator, OperatorContext
from repro.core.operators import (
    FilterOperator,
    FlatMapOperator,
    KeyedCounter,
    KeyedReducer,
    MapOperator,
    TopKOperator,
    WindowedKeyedCounter,
    merge_topk,
)
from repro.core.partition import (
    merge_checkpoints,
    partition_checkpoint,
    partition_processing_state,
    split_interval_groups,
)
from repro.core.query import QueryGraph, linear_query
from repro.core.spill import ExternalStateStore, SpillableState
from repro.core.state import KeyInterval, OutputBuffer, ProcessingState, RoutingState
from repro.core.tuples import KEY_SPACE, Tuple, stable_hash, total_weight
from repro.core.window import (
    SlidingWindowAccumulator,
    WindowAccumulator,
    window_index,
    window_start,
)

__all__ = [
    "BackupStore",
    "Checkpoint",
    "Checkpointer",
    "CostModel",
    "EpochCut",
    "ExecutionGraph",
    "ExternalBackend",
    "ExternalStateStore",
    "FilterOperator",
    "FlatMapOperator",
    "KEY_SPACE",
    "KeyInterval",
    "KeyedCounter",
    "KeyedReducer",
    "LambdaOperator",
    "MapOperator",
    "MemoryBackend",
    "Operator",
    "OperatorContext",
    "OperatorEstimate",
    "OutputBuffer",
    "ProcessingState",
    "QueryGraph",
    "RestorePlan",
    "RoutingState",
    "SIDE_LEFT",
    "SIDE_RIGHT",
    "SideTagger",
    "SlidingWindowAccumulator",
    "Slot",
    "SpillBackend",
    "SpillableState",
    "StateBackend",
    "TopKOperator",
    "Tuple",
    "WindowAccumulator",
    "WindowedJoinOperator",
    "WindowedKeyedCounter",
    "as_checkpoint",
    "backend_for",
    "critical_path",
    "from_external_store",
    "linear_query",
    "materialize_increment",
    "merge_checkpoints",
    "merge_topk",
    "partition_checkpoint",
    "partition_processing_state",
    "split_interval_groups",
    "stable_hash",
    "tag_left",
    "tag_right",
    "to_dot",
    "to_networkx",
    "total_weight",
    "window_index",
    "window_start",
]
