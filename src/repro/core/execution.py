"""Physical execution graphs (§2.2).

The execution graph realises a logical query: every operator *o* runs as
``π`` partitioned slots ``o¹ … o^π``.  A :class:`Slot` is the stable
identity of one partition; its ``uid`` is unique for the lifetime of the
system and never reused, which is what lets duplicate detection by
``(origin slot, timestamp)`` survive instance replacement — a recovered
operator re-occupies the *same* slot (and continues its timestamp
sequence from the checkpoint), while scale out creates *new* slots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.query import QueryGraph
from repro.core.state import RoutingState
from repro.errors import QueryError


@dataclass(frozen=True)
class Slot:
    """Identity of one partition of one logical operator."""

    op_name: str
    index: int
    uid: int

    def __repr__(self) -> str:
        return f"{self.op_name}[{self.index}]#{self.uid}"


@dataclass
class ExecutionGraph:
    """The current physical realisation of a query.

    Maintained by the query manager: the set of live slots per logical
    operator and the routing state *into* each logical operator (shared
    by all of its upstream dispatchers).
    """

    query: QueryGraph
    slots: dict[str, list[Slot]] = field(default_factory=dict)
    routing: dict[str, RoutingState] = field(default_factory=dict)
    _next_uid: int = 0

    def new_slot(self, op_name: str, index: int) -> Slot:
        """Mint a new slot identity (uid is unique forever)."""
        slot = Slot(op_name, index, self._next_uid)
        self._next_uid += 1
        return slot

    def initialise(self, parallelism: dict[str, int] | None = None) -> None:
        """Create the initial slots (one per operator unless overridden)."""
        parallelism = parallelism or {}
        for name in self.query.topological_order():
            count = parallelism.get(name, 1)
            if count < 1:
                raise QueryError(f"parallelism for {name} must be >= 1: {count}")
            self.slots[name] = [self.new_slot(name, i) for i in range(count)]
        for name, op_slots in self.slots.items():
            self.routing[name] = self._even_routing(op_slots)

    @staticmethod
    def _even_routing(op_slots: list[Slot]) -> RoutingState:
        from repro.core.state import KeyInterval

        intervals = KeyInterval.full().split(len(op_slots))
        return RoutingState(
            [(interval, slot.uid) for interval, slot in zip(intervals, op_slots)]
        )

    # ---------------------------------------------------------------- reads

    def slots_of(self, op_name: str) -> list[Slot]:
        """Live slots realising ``op_name``, in partition order."""
        slots = self.slots.get(op_name)
        if slots is None:
            raise QueryError(f"operator {op_name} not deployed")
        return list(slots)

    def slot_by_uid(self, uid: int) -> Slot:
        """Look up a live slot by uid; raises QueryError if absent."""
        for op_slots in self.slots.values():
            for slot in op_slots:
                if slot.uid == uid:
                    return slot
        raise QueryError(f"no live slot with uid {uid}")

    def parallelism_of(self, op_name: str) -> int:
        """Current number of partitions of ``op_name``."""
        return len(self.slots_of(op_name))

    def total_slots(self) -> int:
        """Total live slots across all operators."""
        return sum(len(s) for s in self.slots.values())

    def routing_to(self, op_name: str) -> RoutingState:
        """The routing state into ``op_name``."""
        routing = self.routing.get(op_name)
        if routing is None:
            raise QueryError(f"no routing state for operator {op_name}")
        return routing

    # -------------------------------------------------------------- updates

    def replace_slots(
        self, op_name: str, removed: list[Slot], added: list[Slot]
    ) -> None:
        """Swap partition slots after a scale out / scale in / recovery."""
        current = self.slots.get(op_name)
        if current is None:
            raise QueryError(f"operator {op_name} not deployed")
        removed_uids = {slot.uid for slot in removed}
        kept = [slot for slot in current if slot.uid not in removed_uids]
        if len(kept) + len(removed) != len(current):
            raise QueryError(
                f"attempt to remove slots not deployed for {op_name}: {removed}"
            )
        self.slots[op_name] = kept + list(added)
        for index, slot in enumerate(self.slots[op_name]):
            # Re-number partition indices for readability; uid is identity.
            object.__setattr__(slot, "index", index)

    def set_routing(self, op_name: str, routing: RoutingState) -> None:
        """Install routing for ``op_name`` (targets must be live slots)."""
        live = {slot.uid for slot in self.slots_of(op_name)}
        for _interval, target in routing:
            if target not in live:
                raise QueryError(
                    f"routing for {op_name} references unknown slot uid {target}"
                )
        self.routing[op_name] = routing

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        counts = {name: len(slots) for name, slots in self.slots.items()}
        return f"ExecutionGraph({counts})"
