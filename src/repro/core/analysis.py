"""Query-graph analysis: cost estimation, bottleneck prediction, export.

The paper's §2 observes that static scale-out decisions "require
knowledge of resource requirements of operators ... typically estimated
by cost models [32]" and argues for dynamic decisions instead.  This
module provides that static cost model as the comparison point (and as
the brain behind the Fig. 10 "human expert"): given per-operator
selectivities and costs, it propagates an input rate through the query
graph, predicts each operator's CPU demand, the partition counts a given
threshold implies, and the end-to-end critical path.

Graphs are bridged to :mod:`networkx` for the traversals, and can be
exported as DOT for visual inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core.query import QueryGraph
from repro.errors import QueryError


def to_networkx(query: QueryGraph) -> "nx.DiGraph":
    """Bridge a query graph to a :class:`networkx.DiGraph`.

    Nodes carry the operator object and its statefulness; edges are the
    streams.
    """
    graph = nx.DiGraph()
    for name, operator in query.operators.items():
        graph.add_node(
            name,
            operator=operator,
            stateful=operator.stateful,
            cost_per_tuple=operator.cost_per_tuple,
            source=query.is_source(name),
            sink=query.is_sink(name),
        )
    graph.add_edges_from(query.edges)
    return graph


@dataclass
class OperatorEstimate:
    """Predicted steady-state load of one operator at a given input rate."""

    name: str
    input_rate: float
    cpu_demand: float
    partitions_needed: int
    stateful: bool


@dataclass
class CostModel:
    """A static cost model over a query graph (the [32]-style estimator).

    ``selectivity[(u, v)]`` is the expected number of tuples emitted on
    stream ``(u, v)`` per tuple processed by ``u`` (1.0 when omitted).
    CPU demand is ``input_rate × cost_per_tuple`` per operator, and the
    partition count needed is demand over per-VM capacity at the target
    utilisation threshold.
    """

    query: QueryGraph
    selectivity: dict[tuple[str, str], float] = field(default_factory=dict)
    vm_capacity: float = 1.0
    threshold: float = 0.70

    def input_rates(self, source_rates: dict[str, float]) -> dict[str, float]:
        """Propagate source rates through the graph in topological order."""
        for name in source_rates:
            if not self.query.is_source(name):
                raise QueryError(f"{name} is not a source operator")
        rates = {name: 0.0 for name in self.query.operators}
        rates.update(source_rates)
        for name in self.query.topological_order():
            out_rate = rates[name]
            for down in self.query.downstream_of(name):
                factor = self.selectivity.get((name, down), 1.0)
                rates[down] += out_rate * factor
        return rates

    def estimate(self, source_rates: dict[str, float]) -> list[OperatorEstimate]:
        """Per-operator load estimates at the given source rates."""
        rates = self.input_rates(source_rates)
        estimates = []
        for name in self.query.topological_order():
            operator = self.query.operator(name)
            demand = rates[name] * operator.cost_per_tuple
            if self.query.is_source(name) or self.query.is_sink(name):
                partitions = 1
            else:
                per_partition = self.vm_capacity * self.threshold
                partitions = max(1, -(-int(demand * 1e9) // int(per_partition * 1e9)))
            estimates.append(
                OperatorEstimate(name, rates[name], demand, partitions, operator.stateful)
            )
        return estimates

    def predicted_bottleneck(self, source_rates: dict[str, float]) -> str:
        """The worker operator with the highest predicted CPU demand."""
        candidates = [
            e
            for e in self.estimate(source_rates)
            if not self.query.is_source(e.name) and not self.query.is_sink(e.name)
        ]
        if not candidates:
            raise QueryError("query has no worker operators")
        return max(candidates, key=lambda e: e.cpu_demand).name

    def static_allocation(
        self, source_rates: dict[str, float], budget: int | None = None
    ) -> dict[str, int]:
        """A static deployment plan (the Fig. 10 human expert's method).

        Returns per-operator partition counts; with a ``budget`` the plan
        is scaled proportionally (every operator keeps at least one).
        """
        estimates = [
            e
            for e in self.estimate(source_rates)
            if not self.query.is_source(e.name) and not self.query.is_sink(e.name)
        ]
        plan = {e.name: e.partitions_needed for e in estimates}
        if budget is None:
            return plan
        if budget < len(plan):
            raise QueryError(f"budget {budget} below operator count {len(plan)}")
        total = sum(plan.values())
        scaled = {name: 1 for name in plan}
        remaining = budget - len(plan)
        quotas = {
            name: remaining * count / total for name, count in plan.items()
        }
        for name, quota in quotas.items():
            scaled[name] += int(quota)
        leftovers = budget - sum(scaled.values())
        for name in sorted(quotas, key=lambda n: quotas[n] - int(quotas[n]), reverse=True)[
            :leftovers
        ]:
            scaled[name] += 1
        return scaled


def critical_path(query: QueryGraph) -> list[str]:
    """The source→sink path with the highest total per-tuple cost."""
    graph = to_networkx(query)
    best_path: list[str] = []
    best_cost = -1.0
    for source in query.sources:
        for sink in query.sinks:
            for path in nx.all_simple_paths(graph, source, sink):
                cost = sum(query.operator(n).cost_per_tuple for n in path)
                if cost > best_cost:
                    best_cost = cost
                    best_path = list(path)
    if not best_path:
        raise QueryError("no source→sink path in query graph")
    return best_path


def to_dot(query: QueryGraph, parallelism: dict[str, int] | None = None) -> str:
    """Render the query graph as GraphViz DOT.

    Stateful operators are drawn as double circles; optional partition
    counts annotate the labels (the execution-graph view of Fig. 1).
    """
    parallelism = parallelism or {}
    lines = ["digraph query {", "  rankdir=LR;"]
    for name, operator in query.operators.items():
        shape = "doublecircle" if operator.stateful else "ellipse"
        if query.is_source(name) or query.is_sink(name):
            shape = "box"
        label = name
        if name in parallelism and parallelism[name] > 1:
            label = f"{name} x{parallelism[name]}"
        lines.append(f'  "{name}" [shape={shape}, label="{label}"];')
    for up, down in query.edges:
        lines.append(f'  "{up}" -> "{down}";')
    lines.append("}")
    return "\n".join(lines)
