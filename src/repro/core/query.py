"""Logical query graphs (§2.2).

A query is a DAG of operators with dedicated source and sink operators.
Sources and sinks are ordinary :class:`~repro.core.operator.Operator`
objects flagged on the graph; the paper assumes they cannot fail, which
the runtime honours by never injecting failures into their VMs.
"""

from __future__ import annotations

from typing import Iterable

from repro.core.operator import Operator
from repro.errors import QueryError


class QueryGraph:
    """A directed acyclic graph of logical operators."""

    def __init__(self) -> None:
        self._operators: dict[str, Operator] = {}
        self._edges: list[tuple[str, str]] = []
        self._sources: set[str] = set()
        self._sinks: set[str] = set()

    # -------------------------------------------------------------- building

    def add_operator(
        self, operator: Operator, source: bool = False, sink: bool = False
    ) -> Operator:
        """Register an operator; returns it for chaining."""
        if operator.name in self._operators:
            raise QueryError(f"duplicate operator name: {operator.name}")
        self._operators[operator.name] = operator
        if source:
            self._sources.add(operator.name)
        if sink:
            self._sinks.add(operator.name)
        return operator

    def connect(self, upstream: str, downstream: str) -> None:
        """Add a stream ``(upstream, downstream)``."""
        for name in (upstream, downstream):
            if name not in self._operators:
                raise QueryError(f"unknown operator: {name}")
        if upstream == downstream:
            raise QueryError(f"self-loop on operator {upstream}")
        edge = (upstream, downstream)
        if edge in self._edges:
            raise QueryError(f"duplicate stream {edge}")
        self._edges.append(edge)

    def chain(self, *names: str) -> None:
        """Connect a linear pipeline ``names[0] → names[1] → ...``."""
        for up, down in zip(names, names[1:]):
            self.connect(up, down)

    # -------------------------------------------------------------- queries

    @property
    def operators(self) -> dict[str, Operator]:
        return dict(self._operators)

    def operator(self, name: str) -> Operator:
        """Look up an operator by name; raises QueryError if unknown."""
        op = self._operators.get(name)
        if op is None:
            raise QueryError(f"unknown operator: {name}")
        return op

    @property
    def edges(self) -> list[tuple[str, str]]:
        return list(self._edges)

    def upstream_of(self, name: str) -> list[str]:
        """up(o): operators with a stream into ``name``."""
        return [u for u, d in self._edges if d == name]

    def downstream_of(self, name: str) -> list[str]:
        """down(o): operators fed by ``name``."""
        return [d for u, d in self._edges if u == name]

    @property
    def sources(self) -> list[str]:
        return sorted(self._sources)

    @property
    def sinks(self) -> list[str]:
        return sorted(self._sinks)

    def is_source(self, name: str) -> bool:
        """Whether ``name`` is a source operator."""
        return name in self._sources

    def is_sink(self, name: str) -> bool:
        """Whether ``name`` is a sink operator."""
        return name in self._sinks

    def topological_order(self) -> list[str]:
        """Operator names in topological order; raises on cycles."""
        indegree = {name: 0 for name in self._operators}
        for _up, down in self._edges:
            indegree[down] += 1
        ready = sorted(name for name, deg in indegree.items() if deg == 0)
        order: list[str] = []
        while ready:
            name = ready.pop(0)
            order.append(name)
            for down in self.downstream_of(name):
                indegree[down] -= 1
                if indegree[down] == 0:
                    ready.append(down)
            ready.sort()
        if len(order) != len(self._operators):
            raise QueryError("query graph contains a cycle")
        return order

    def validate(self) -> None:
        """Check the structural assumptions of §2.2."""
        if not self._operators:
            raise QueryError("empty query graph")
        self.topological_order()  # raises on cycles
        if not self._sources:
            raise QueryError("query graph has no source operator")
        if not self._sinks:
            raise QueryError("query graph has no sink operator")
        for name in self._sources:
            if self.upstream_of(name):
                raise QueryError(f"source {name} must not have inputs")
        for name in self._sinks:
            if self.downstream_of(name):
                raise QueryError(f"sink {name} must not have outputs")
        for name in self._operators:
            if name in self._sources or name in self._sinks:
                continue
            if not self.upstream_of(name):
                raise QueryError(f"operator {name} has no inputs")
            if not self.downstream_of(name):
                raise QueryError(f"operator {name} has no outputs")

    def stateful_operators(self) -> list[str]:
        """Names of all stateful operators in the graph."""
        return [name for name, op in self._operators.items() if op.stateful]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QueryGraph({len(self._operators)} ops, {len(self._edges)} streams)"


def linear_query(operators: Iterable[Operator]) -> QueryGraph:
    """Build a linear pipeline; first operator is the source, last the sink."""
    ops = list(operators)
    if len(ops) < 2:
        raise QueryError("a linear query needs at least a source and a sink")
    graph = QueryGraph()
    for index, op in enumerate(ops):
        graph.add_operator(op, source=index == 0, sink=index == len(ops) - 1)
    graph.chain(*[op.name for op in ops])
    graph.validate()
    return graph
