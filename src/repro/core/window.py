"""Window semantics helpers.

The paper's evaluation queries use tumbling time windows (e.g. word
frequencies over a 30 s window).  Windowing here is a per-key, per-window
bucketing helper that windowed operators keep inside their processing
state — windows are *part of* externalised state, so checkpoints and
partitions carry open windows with them.
"""

from __future__ import annotations

import math
from typing import Any, Callable

from repro.errors import ConfigurationError


def window_index(time: float, width: float) -> int:
    """Index of the tumbling window containing ``time``."""
    if width <= 0:
        raise ConfigurationError(f"window width must be positive: {width}")
    return int(math.floor(time / width))


def window_start(index: int, width: float) -> float:
    """Start time of the window with the given index."""
    return index * width


class SlidingWindowAccumulator:
    """Per-key sliding-window aggregation, stored as a state value.

    §2 contrasts the paper's history-dependent operators with classic
    relational sliding windows, whose state "only depends on a recent
    finite set of tuples".  This helper implements that classic case:
    the state value for key *k* is a list of ``(event_time, value)``
    pairs; :meth:`aggregate` folds everything inside the trailing window.
    Operators built on it recover fine under upstream backup, which is
    exactly the paper's point about when UB suffices.
    """

    def __init__(self, width: float) -> None:
        if width <= 0:
            raise ConfigurationError(f"window width must be positive: {width}")
        self.width = width

    def add(self, entries: list, time: float, value: Any) -> None:
        """Append a sample and prune everything outside the window."""
        entries.append((time, value))
        self.prune(entries, time)

    def prune(self, entries: list, now: float) -> int:
        """Drop samples older than ``now - width``; returns how many."""
        horizon = now - self.width
        kept = [(t, v) for t, v in entries if t >= horizon]
        dropped = len(entries) - len(kept)
        entries[:] = kept
        return dropped

    def aggregate(
        self, entries: list, now: float, fold: Callable[[Any, Any], Any], zero: Any
    ) -> Any:
        """Fold all in-window values with ``fold``, starting from ``zero``."""
        horizon = now - self.width
        result = zero
        for time, value in entries:
            if time >= horizon:
                result = fold(result, value)
        return result


class WindowAccumulator:
    """Per-key accumulator for one tumbling window, stored as a state value.

    The value held in processing state for key ``k`` is a dict
    ``{window_index: accumulated}``; this helper centralises the add/flush
    logic so operators stay tiny.
    """

    def __init__(
        self,
        width: float,
        add: Callable[[Any, Any, int], Any],
        zero: Callable[[], Any],
    ) -> None:
        self.width = width
        self._add = add
        self._zero = zero

    def accumulate(
        self, bucket_map: dict[int, Any], time: float, value: Any, weight: int = 1
    ) -> None:
        """Fold ``value`` (with ``weight``) into the window covering ``time``."""
        index = window_index(time, self.width)
        current = bucket_map.get(index)
        if current is None:
            current = self._zero()
        bucket_map[index] = self._add(current, value, weight)

    def flush_closed(
        self, bucket_map: dict[int, Any], now: float
    ) -> list[tuple[int, Any]]:
        """Remove and return all windows that closed before ``now``."""
        current_index = window_index(now, self.width)
        closed = sorted(index for index in bucket_map if index < current_index)
        return [(index, bucket_map.pop(index)) for index in closed]
